//===- journal_test.cpp - Crash-durable journal round trips -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability contract of src/io: a journaled run salvages exactly
/// the valid prefix, no matter where the byte stream tears.
///
///  - CRC32C known-answer and chaining vectors; atomic file replacement.
///  - Clean round trip: journal -> readJournal reproduces the run's
///    per-thread profile texts and merged report byte for byte, across
///    --jobs values (the journal file itself is jobs-invariant).
///  - Truncation: cutting the file after commit R recovers the same
///    state as a reference run stopped at MaxRounds = R.
///  - Fuzz corpus: seeded truncations, bit flips and segment swaps.
///    Recovery never crashes, never trusts bytes past a bad CRC, and
///    keeps exactly the commits that precede the damage. Failures
///    print DJX_JOURNAL_FUZZ_SEED for replay.
///  - Injected I/O faults: write errors degrade journaling to off
///    without touching the run; short writes leave a recoverable torn
///    prefix; corrupt bits never survive read-back.
///  - Merge: remapped snapshots from N journals fold into keyed sums.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/DjxPerf.h"
#include "core/Report.h"
#include "io/AtomicFile.h"
#include "io/Checksum.h"
#include "io/JournalReader.h"
#include "io/ProfileJournal.h"
#include "support/FaultInjector.h"
#include "support/VmError.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(journal_test, 80.0, 50.0,
    "src/io/AtomicFile.cpp",
    "src/io/AtomicFile.h",
    "src/io/Checksum.h",
    "src/io/JournalReader.cpp",
    "src/io/JournalReader.h",
    "src/io/ProfileJournal.cpp",
    "src/io/ProfileJournal.h");

/// Fuzz iterations per mutation kind.
constexpr int kFuzzCases = 40;

uint64_t mixSeed(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Fuzz base seed: DJX_JOURNAL_FUZZ_SEED when set (replay), fresh
/// entropy otherwise. Printed exactly once per binary run.
uint64_t fuzzSeed() {
  static uint64_t Seed = [] {
    uint64_t S;
    if (const char *Env = std::getenv("DJX_JOURNAL_FUZZ_SEED")) {
      S = std::strtoull(Env, nullptr, 0);
    } else {
      std::random_device Rd;
      S = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    }
    std::printf("[journal] DJX_JOURNAL_FUZZ_SEED=0x%016" PRIx64
                " (export to reproduce)\n",
                S);
    return S;
  }();
  return Seed;
}

struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::clear(); }
};

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "djx_journal_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Small-but-real journaling workload: enough rounds for many epochs,
/// churn for safepoint GCs, hot arrays past L1 so samples flow.
ParallelConfig journalWorkload() {
  ParallelConfig Pc;
  Pc.SimThreads = 2;
  Pc.Iters = 60;
  Pc.Nlen = 96;
  Pc.HotElems = 8192;
  Pc.HeapBytesPerThread = 256 << 10;
  return Pc;
}

JournalMeta testMeta() {
  JournalMeta M;
  M.Workload = "journal-test";
  M.Title = "DJXPerf: journal-test";
  M.EventKind = static_cast<unsigned>(PerfEventKind::L1Miss);
  return M;
}

/// Everything observable from one journaled in-process run.
struct JournaledRun {
  bool JournalActive = false; ///< Still on at close (no degrade).
  uint64_t Rounds = 0;
  std::string Report; ///< Merged object-centric report text.
  std::vector<std::string> ProfileTexts; ///< writeTo per thread.
};

/// Runs the journal workload with the CLI's wiring (flush at round
/// barriers, closeClean at the end) and returns the live-side state the
/// journal must reproduce. MaxRounds = 0 runs to completion.
JournaledRun runJournaled(const std::string &Path, unsigned Jobs,
                          uint64_t MaxRounds = 0) {
  ParallelConfig Pc = journalWorkload();
  Pc.Jobs = Jobs;
  Pc.MaxRounds = MaxRounds;
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  std::string Err;
  auto Journal = ProfileJournal::open(Path, testMeta(), &Err);
  EXPECT_NE(Journal, nullptr) << Err;
  Pc.OnRoundEnd = [&](uint64_t Round) {
    if (Journal)
      Journal->flush(Prof, Vm.methods(), Round);
    return false;
  };
  JournaledRun R;
  ParallelOutcome Out = runParallelWorkload(Vm, &Prof, Pc);
  R.Rounds = Out.Rounds;
  Prof.stop();
  if (Journal) {
    Journal->closeClean(Prof, Vm.methods());
    R.JournalActive = Journal->active();
  }
  MergedProfile P = Prof.analyze();
  R.Report = renderObjectCentric(P, Vm.methods());
  for (const ThreadProfile *T : Prof.profiles()) {
    std::ostringstream OS;
    T->writeTo(OS);
    R.ProfileTexts.push_back(OS.str());
  }
  return R;
}

/// Renders the recovered state the same way the live side did.
std::string recoveredReport(const JournalRecovery &R) {
  MethodRegistry Methods = buildJournalMethodRegistry(R);
  std::vector<const ThreadProfile *> Parts;
  for (const ThreadProfile &P : R.Profiles)
    Parts.push_back(&P);
  return renderObjectCentric(mergeProfiles(Parts), Methods);
}

// --- Checksum --------------------------------------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix B).
  EXPECT_EQ(Crc32c::compute("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c::compute("", 0), 0u);
  // 32 zero bytes, a common iSCSI test vector.
  unsigned char Zeros[32] = {};
  EXPECT_EQ(Crc32c::compute(Zeros, sizeof(Zeros)), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainsAcrossSplits) {
  const char *Data = "the quick brown fox jumps over the lazy dog";
  size_t Len = std::strlen(Data);
  uint32_t Whole = Crc32c::compute(Data, Len);
  for (size_t Cut = 0; Cut <= Len; ++Cut) {
    uint32_t Head = Crc32c::compute(Data, Cut);
    EXPECT_EQ(Crc32c::compute(Data + Cut, Len - Cut, Head), Whole) << Cut;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  std::string Data = "journal segment payload";
  uint32_t Good = Crc32c::compute(Data.data(), Data.size());
  for (size_t I = 0; I < Data.size() * 8; ++I) {
    std::string Bad = Data;
    Bad[I / 8] = static_cast<char>(Bad[I / 8] ^ (1u << (I % 8)));
    EXPECT_NE(Crc32c::compute(Bad.data(), Bad.size()), Good) << I;
  }
}

// --- Atomic file replacement -----------------------------------------------

TEST(AtomicFile, WritesAndReplaces) {
  std::string Path = tempPath("atomic.txt");
  ASSERT_TRUE(writeFileAtomic(Path, "first\n"));
  EXPECT_EQ(slurp(Path), "first\n");
  ASSERT_TRUE(writeFileAtomic(Path, "second\n"));
  EXPECT_EQ(slurp(Path), "second\n");
  // The staging file never survives a successful replacement.
  EXPECT_FALSE(std::ifstream(Path + ".tmp").good());
  std::remove(Path.c_str());
}

TEST(AtomicFile, ReportsUnwritableTargets) {
  std::string Error;
  EXPECT_FALSE(writeFileAtomic("/nonexistent-dir/x/y.txt", "data", &Error));
  EXPECT_FALSE(Error.empty());
}

// --- Meta codec ------------------------------------------------------------

TEST(JournalMetaCodec, RoundTripsEveryField) {
  JournalMeta M;
  M.Workload = "parallel4 with spaces";
  M.Title = "DJXPerf: a title";
  M.EventKind = static_cast<unsigned>(PerfEventKind::TlbMiss);
  M.ReportMode = 2;
  M.TopGroups = 17;
  M.TopAccessContexts = 3;
  M.MinShare = 0.015625;
  M.ShowNuma = false;
  JournalMeta Back;
  ASSERT_TRUE(decodeJournalMeta(encodeJournalMeta(M), Back));
  EXPECT_EQ(Back.Workload, M.Workload);
  EXPECT_EQ(Back.Title, M.Title);
  EXPECT_EQ(Back.EventKind, M.EventKind);
  EXPECT_EQ(Back.ReportMode, M.ReportMode);
  EXPECT_EQ(Back.TopGroups, M.TopGroups);
  EXPECT_EQ(Back.TopAccessContexts, M.TopAccessContexts);
  EXPECT_EQ(Back.MinShare, M.MinShare);
  EXPECT_EQ(Back.ShowNuma, M.ShowNuma);
}

TEST(JournalMetaCodec, RejectsMalformedPayloads) {
  JournalMeta M;
  EXPECT_FALSE(decodeJournalMeta("event notanumber\n", M));
}

// --- Clean round trip ------------------------------------------------------

TEST(JournalRoundTrip, RecoversCompleteRunExactly) {
  std::string Path = tempPath("clean.djxj");
  JournaledRun Live = runJournaled(Path, 2);
  EXPECT_TRUE(Live.JournalActive);

  JournalRecovery R = readJournal(Path);
  ASSERT_TRUE(R.HeaderValid) << R.HeaderError;
  EXPECT_TRUE(R.HasMeta);
  EXPECT_EQ(R.Meta.Workload, "journal-test");
  EXPECT_TRUE(R.Closed);
  EXPECT_TRUE(R.CloseClean);
  EXPECT_FALSE(R.degraded());
  EXPECT_EQ(R.TrailingBytes, 0u);
  EXPECT_EQ(R.SegmentsUncommitted, 0u);
  EXPECT_EQ(R.LastRound, Live.Rounds);

  // Per-thread snapshots reproduce the live profiles byte for byte.
  ASSERT_EQ(R.Profiles.size(), Live.ProfileTexts.size());
  for (size_t I = 0; I < R.Profiles.size(); ++I) {
    std::ostringstream OS;
    R.Profiles[I].writeTo(OS);
    EXPECT_EQ(OS.str(), Live.ProfileTexts[I]) << "thread " << I;
  }
  EXPECT_EQ(recoveredReport(R), Live.Report);
  std::remove(Path.c_str());
}

TEST(JournalRoundTrip, FileBytesAreJobsInvariant) {
  std::string P1 = tempPath("jobs1.djxj");
  std::string P2 = tempPath("jobs2.djxj");
  std::string P4 = tempPath("jobs4.djxj");
  runJournaled(P1, 1);
  runJournaled(P2, 2);
  runJournaled(P4, 4);
  std::string B1 = slurp(P1);
  EXPECT_FALSE(B1.empty());
  EXPECT_EQ(B1, slurp(P2));
  EXPECT_EQ(B1, slurp(P4));
  std::remove(P1.c_str());
  std::remove(P2.c_str());
  std::remove(P4.c_str());
}

// --- Truncation rule -------------------------------------------------------

TEST(JournalTruncation, CutAtCommitMatchesMaxRoundsReference) {
  std::string Path = tempPath("full.djxj");
  runJournaled(Path, 2);
  std::string Full = slurp(Path);
  JournalRecovery Whole = readJournal(Path);
  ASSERT_TRUE(Whole.Closed);

  // Pick a Commit sentinel mid-run and cut the file right after it;
  // recovery must equal a reference run stopped at that round.
  const JournalSegmentInfo *Cut = nullptr;
  for (const JournalSegmentInfo &S : Whole.Segments)
    if (S.Type == static_cast<uint32_t>(SegmentType::Commit) &&
        S.Epoch * 2 <= Whole.LastEpoch)
      Cut = &S;
  ASSERT_NE(Cut, nullptr);
  uint64_t Round = Cut->Epoch; // flush(Round) stamps Epoch == Round here.

  std::string Torn = Full.substr(0, Cut->Offset + Cut->Length);
  std::string TornPath = tempPath("torn.djxj");
  spit(TornPath, Torn);
  JournalRecovery R = readJournal(TornPath);
  ASSERT_TRUE(R.HeaderValid);
  EXPECT_FALSE(R.Closed);
  EXPECT_TRUE(R.degraded());
  EXPECT_EQ(R.LastRound, Round);
  EXPECT_EQ(R.TrailingBytes, 0u);
  EXPECT_TRUE(R.TruncationReason.empty());

  std::string RefPath = tempPath("ref.djxj");
  JournaledRun Ref = runJournaled(RefPath, 2, Round);
  EXPECT_EQ(Ref.Rounds, Round);
  EXPECT_EQ(recoveredReport(R), Ref.Report);

  std::remove(Path.c_str());
  std::remove(TornPath.c_str());
  std::remove(RefPath.c_str());
}

// --- Fuzz corpus -----------------------------------------------------------

/// Oracle for damage at byte offset \p Damage: the epoch of the last
/// Commit/Close whose bytes end at or before the damage point. The
/// scanner stops at the first violation and never resynchronizes, so it
/// must recover exactly this epoch.
uint64_t lastDurableEpochBefore(const JournalRecovery &Whole,
                                uint64_t Damage) {
  uint64_t Epoch = 0;
  for (const JournalSegmentInfo &S : Whole.Segments)
    if ((S.Type == static_cast<uint32_t>(SegmentType::Commit) ||
         S.Type == static_cast<uint32_t>(SegmentType::Close)) &&
        S.Offset + S.Length <= Damage)
      Epoch = S.Epoch;
  return Epoch;
}

TEST(JournalFuzz, SalvagesExactlyTheValidPrefix) {
  std::string Path = tempPath("fuzz.djxj");
  runJournaled(Path, 2);
  std::string Full = slurp(Path);
  JournalRecovery Whole = readJournal(Path);
  ASSERT_TRUE(Whole.Closed);
  ASSERT_GE(Whole.Segments.size(), 8u);

  uint64_t Base = fuzzSeed();
  std::string MutPath = tempPath("fuzz_mut.djxj");
  for (int Case = 0; Case < kFuzzCases; ++Case) {
    uint64_t S = mixSeed(Base + static_cast<uint64_t>(Case));
    std::string Label = "fuzz case " + std::to_string(Case);
    std::string Mut = Full;
    uint64_t Damage;
    switch (Case % 3) {
    case 0: { // Truncate at an arbitrary byte.
      Damage = S % Full.size();
      Mut.resize(Damage);
      break;
    }
    case 1: { // Flip one bit. CRC32C catches every 1-bit error, so the
              // segment containing it can never be trusted.
      uint64_t Bit = S % (Full.size() * 8);
      Damage = Bit / 8;
      Mut[Damage] = static_cast<char>(Mut[Damage] ^ (1u << (Bit % 8)));
      // The damaged *segment* starts before the damaged byte: commits
      // inside it are gone too. Walk back to its header offset.
      for (const JournalSegmentInfo &Seg : Whole.Segments)
        if (Seg.Offset <= Damage && Damage < Seg.Offset + Seg.Length)
          Damage = Seg.Offset;
      break;
    }
    default: { // Swap two adjacent segments: a sequence break.
      size_t I = S % (Whole.Segments.size() - 1);
      const JournalSegmentInfo &A = Whole.Segments[I];
      const JournalSegmentInfo &B = Whole.Segments[I + 1];
      std::string Swapped = Full.substr(0, A.Offset);
      Swapped += Full.substr(B.Offset, B.Length);
      Swapped += Full.substr(A.Offset, A.Length);
      Swapped += Full.substr(B.Offset + B.Length);
      Mut = std::move(Swapped);
      Damage = A.Offset;
      break;
    }
    }
    spit(MutPath, Mut);
    JournalRecovery R = readJournal(MutPath); // Must never crash.
    if (Damage < kJournalFileHeaderBytes) {
      EXPECT_FALSE(R.HeaderValid) << Label;
      continue;
    }
    ASSERT_TRUE(R.HeaderValid) << Label;
    EXPECT_EQ(R.LastEpoch, lastDurableEpochBefore(Whole, Damage)) << Label;
    EXPECT_LE(R.BytesKept, Mut.size()) << Label;
    // Salvaged profiles always parse back (readJournal drops the
    // unparseable), and the report renders without crashing.
    EXPECT_EQ(R.Profiles.size(), R.Snapshots.size()) << Label;
    recoveredReport(R);
  }
  std::remove(Path.c_str());
  std::remove(MutPath.c_str());
}

// --- Injected I/O faults ---------------------------------------------------

TEST(JournalFaults, WriteErrorDegradesToOffRunUnaffected) {
  InjectorGuard Guard;
  std::string Plain = tempPath("plainref.djxj");
  JournaledRun Ref = runJournaled(Plain, 2);

  FaultPlan Plan;
  Plan.Seed = 0x77;
  Plan.rate(FaultSite::JournalWriteError) = 1.0;
  FaultInjector::install(Plan);
  std::string Path = tempPath("werror.djxj");
  JournaledRun Run = runJournaled(Path, 2);
  EXPECT_GE(FaultInjector::firedCount(FaultSite::JournalWriteError), 1u);
  FaultInjector::clear();

  // Journaling is an observer: the run's own results never change.
  EXPECT_FALSE(Run.JournalActive);
  EXPECT_EQ(Run.Report, Ref.Report);
  std::remove(Plain.c_str());
  std::remove(Path.c_str());
}

TEST(JournalFaults, ShortWriteLeavesRecoverableTornPrefix) {
  InjectorGuard Guard;
  FaultPlan Plan;
  Plan.Seed = 0x99;
  // Spare the first flush (header + Meta) on this seed; fail soon after.
  Plan.rate(FaultSite::JournalShortWrite) = 0.2;
  FaultInjector::install(Plan);
  std::string Path = tempPath("short.djxj");
  JournaledRun Run = runJournaled(Path, 2);
  FaultInjector::clear();
  EXPECT_FALSE(Run.JournalActive);

  JournalRecovery R = readJournal(Path); // Must never crash.
  if (R.HeaderValid) {
    EXPECT_TRUE(R.degraded());
    EXPECT_FALSE(R.Closed);
    recoveredReport(R);
  }
  std::remove(Path.c_str());
}

TEST(JournalFaults, CorruptBitsNeverSurviveReadBack) {
  InjectorGuard Guard;
  FaultPlan Plan;
  Plan.Seed = 0x42;
  Plan.rate(FaultSite::JournalCorruptByte) = 1.0;
  FaultInjector::install(Plan);
  std::string Path = tempPath("corrupt.djxj");
  runJournaled(Path, 2);
  FaultInjector::clear();

  // Every segment with a payload was corrupted after its CRC was
  // computed; the scanner must reject the very first one.
  JournalRecovery R = readJournal(Path);
  ASSERT_TRUE(R.HeaderValid);
  EXPECT_EQ(R.SegmentsCommitted, 0u);
  EXPECT_EQ(R.LastEpoch, 0u);
  EXPECT_FALSE(R.HasMeta);
  EXPECT_EQ(R.TruncationReason, "segment checksum mismatch");
  std::remove(Path.c_str());
}

// --- Merge -----------------------------------------------------------------

TEST(JournalMerge, TwoIdenticalJournalsSumToDouble) {
  std::string P1 = tempPath("merge1.djxj");
  std::string P2 = tempPath("merge2.djxj");
  JournaledRun Live = runJournaled(P1, 2);
  runJournaled(P2, 2);

  MethodRegistry Union;
  std::vector<ThreadProfile> All;
  uint64_t TidOffset = 0;
  for (const std::string &Path : {P1, P2}) {
    JournalRecovery R = readJournal(Path);
    ASSERT_TRUE(R.Closed && R.CloseClean) << Path;
    std::vector<MethodId> Map;
    for (const MethodInfo &M : R.Methods)
      Map.push_back(Union.getOrRegister(M.ClassName, M.MethodName,
                                        M.LineTable));
    uint64_t MaxTid = TidOffset;
    for (const auto &[Tid, Text] : R.Snapshots) {
      (void)Tid;
      std::istringstream IS(remapSnapshotText(Text, TidOffset, Map));
      ThreadProfile P;
      ASSERT_TRUE(P.readFrom(IS)) << Path;
      MaxTid = std::max(MaxTid, P.threadId());
      All.push_back(std::move(P));
    }
    TidOffset = MaxTid;
  }

  std::vector<const ThreadProfile *> Parts;
  for (const ThreadProfile &P : All)
    Parts.push_back(&P);
  MergedProfile Merged = mergeProfiles(Parts);

  JournalRecovery Single = readJournal(P1);
  std::vector<const ThreadProfile *> OneParts;
  for (const ThreadProfile &P : Single.Profiles)
    OneParts.push_back(&P);
  MergedProfile One = mergeProfiles(OneParts);

  EXPECT_EQ(Merged.ThreadsMerged, 2 * One.ThreadsMerged);
  EXPECT_EQ(Merged.UnattributedSamples, 2 * One.UnattributedSamples);
  for (size_t K = 0; K < kNumPerfEventKinds; ++K)
    EXPECT_EQ(Merged.Totals.Counts[K], 2 * One.Totals.Counts[K]) << K;
  (void)Live;
  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

TEST(JournalMerge, RemapRewritesThreadAndMethodIds) {
  // A tiny handwritten djxprofile: one node, one group, an unknown-tid
  // homenode line. Offset 10, map method 0 -> 7.
  std::string Text =
      "djxprofile v1\n"
      "thread 2 worker-1\n"
      "cct 2\n"
      "node 1 0 0 4\n"
      "group 2 1 long[] 1 64 0 0 1 0 0 0 0 0 0\n"
      "homenode 0 1 0 3\n"
      "homenode 2 1 0 5\n"
      "totals 1 0 0 0 0 0 0\n"
      "unattributed 0\n"
      "end\n";
  std::vector<MethodId> Map = {7};
  std::string Out = remapSnapshotText(Text, 10, Map);
  EXPECT_NE(Out.find("thread 12 worker-1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("node 1 0 7 4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("group 12 1 long[]"), std::string::npos) << Out;
  // Alloc-thread 0 (unknown provenance) is preserved; 2 is offset.
  EXPECT_NE(Out.find("homenode 0 1 0 3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("homenode 12 1 0 5"), std::string::npos) << Out;
}

} // namespace
