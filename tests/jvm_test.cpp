//===- jvm_test.cpp - Unit tests for src/jvm ---------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/JavaVm.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(jvm_test, 80.0, 48.0,
    "src/jvm/Gc.cpp",
    "src/jvm/Gc.h",
    "src/jvm/Heap.cpp",
    "src/jvm/Heap.h",
    "src/jvm/JavaThread.h",
    "src/jvm/JavaVm.cpp",
    "src/jvm/JavaVm.h",
    "src/jvm/Jvmti.cpp",
    "src/jvm/Jvmti.h",
    "src/jvm/MethodRegistry.cpp",
    "src/jvm/MethodRegistry.h",
    "src/jvm/ObjectModel.h",
    "src/jvm/TypeRegistry.cpp",
    "src/jvm/TypeRegistry.h");

VmConfig smallVm(uint64_t HeapBytes = 1 << 20) {
  VmConfig C;
  C.HeapBytes = HeapBytes;
  return C;
}

// --- Heap ---------------------------------------------------------------------

TEST(Heap, AllocateAlignsAndZeroes) {
  Heap H(1 << 16);
  ObjectRef A = H.allocate(0, 12, 0);
  ObjectRef B = H.allocate(0, 8, 0);
  ASSERT_NE(A, kNullRef);
  ASSERT_NE(B, kNullRef);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_EQ(B, A + 16); // 12 rounded to 16.
  EXPECT_EQ(H.rawReadWord(A), 0u);
}

TEST(Heap, NullIsNotAnObject) {
  Heap H(1 << 16);
  EXPECT_FALSE(H.isObjectStart(kNullRef));
  EXPECT_GE(H.allocate(0, 8, 0), Heap::kArenaBase);
}

TEST(Heap, AllocationFailureReturnsNull) {
  Heap H(256);
  EXPECT_NE(H.allocate(0, 128, 0), kNullRef);
  EXPECT_EQ(H.allocate(0, 128, 0), kNullRef);
}

TEST(Heap, ObjectContaining) {
  Heap H(1 << 16);
  ObjectRef A = H.allocate(0, 64, 0);
  ObjectRef B = H.allocate(0, 64, 0);
  EXPECT_EQ(H.objectContaining(A), A);
  EXPECT_EQ(H.objectContaining(A + 63), A);
  EXPECT_EQ(H.objectContaining(B + 1), B);
  EXPECT_EQ(H.objectContaining(B + 64), kNullRef);
  EXPECT_EQ(H.objectContaining(0), kNullRef);
}

TEST(Heap, RawWordRoundTrip) {
  Heap H(1 << 16);
  ObjectRef A = H.allocate(0, 64, 0);
  H.rawWriteWord(A + 8, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(H.rawReadWord(A + 8), 0xDEADBEEFCAFEULL);
  H.rawWriteU32(A + 16, 0x1234);
  EXPECT_EQ(H.rawReadU32(A + 16), 0x1234u);
}

TEST(Heap, UsageAccounting) {
  Heap H(1 << 16);
  EXPECT_EQ(H.usedBytes(), 0u);
  H.allocate(0, 100, 0);
  EXPECT_EQ(H.usedBytes(), 104u);
  EXPECT_EQ(H.liveBytes(), 100u);
  EXPECT_EQ(H.peakUsedBytes(), 104u);
  EXPECT_EQ(H.numObjects(), 1u);
}

// --- TypeRegistry ----------------------------------------------------------------

TEST(TypeRegistry, PrimitiveArraysPredefined) {
  TypeRegistry R;
  EXPECT_EQ(R.get(R.intArray()).ElemSize, 4u);
  EXPECT_EQ(R.get(R.doubleArray()).ElemSize, 8u);
  EXPECT_EQ(R.get(R.byteArray()).ElemSize, 1u);
  EXPECT_TRUE(R.get(R.longArray()).IsArray);
  EXPECT_FALSE(R.get(R.longArray()).ElemIsRef);
}

TEST(TypeRegistry, DefineClassWithRefFields) {
  TypeRegistry R;
  TypeId T = R.defineClass("Node", 24, {0, 8});
  const TypeDescriptor &D = R.get(T);
  EXPECT_EQ(D.Name, "Node");
  EXPECT_EQ(D.InstanceSize, 24u);
  EXPECT_EQ(D.RefOffsets.size(), 2u);
  EXPECT_FALSE(D.IsArray);
  EXPECT_EQ(R.byName("Node"), T);
  EXPECT_TRUE(R.hasName("Node"));
  EXPECT_FALSE(R.hasName("Missing"));
}

TEST(TypeRegistry, RefArrayTypeIsMemoized) {
  TypeRegistry R;
  R.defineClass("Foo", 16);
  TypeId A = R.refArrayType("Foo");
  TypeId B = R.refArrayType("Foo");
  EXPECT_EQ(A, B);
  EXPECT_TRUE(R.get(A).ElemIsRef);
  EXPECT_EQ(R.get(A).Name, "Foo[]");
}

// --- MethodRegistry ----------------------------------------------------------------

TEST(MethodRegistry, LineForBci) {
  MethodRegistry R;
  MethodId M = R.registerMethod("C", "m", {{0, 10}, {5, 20}, {9, 30}});
  EXPECT_EQ(R.lineForBci(M, 0), 10u);
  EXPECT_EQ(R.lineForBci(M, 4), 10u);
  EXPECT_EQ(R.lineForBci(M, 5), 20u);
  EXPECT_EQ(R.lineForBci(M, 100), 30u);
}

TEST(MethodRegistry, EmptyLineTableGivesZero) {
  MethodRegistry R;
  MethodId M = R.registerMethod("C", "m", {});
  EXPECT_EQ(R.lineForBci(M, 3), 0u);
}

TEST(MethodRegistry, QualifiedNameAndFind) {
  MethodRegistry R;
  MethodId M = R.registerMethod("FFT", "transform", {});
  EXPECT_EQ(R.qualifiedName(M), "FFT.transform");
  EXPECT_EQ(R.find("FFT", "transform"), M);
  EXPECT_EQ(R.find("FFT", "nope"), kInvalidMethod);
  EXPECT_EQ(R.getOrRegister("FFT", "transform", {}), M);
  EXPECT_NE(R.getOrRegister("FFT", "other", {}), M);
}

TEST(MethodRegistry, RejitCountsInstances) {
  MethodRegistry R;
  MethodId M = R.registerMethod("C", "m", {});
  EXPECT_EQ(R.get(M).JitInstances, 1u);
  R.rejit(M);
  R.rejit(M);
  EXPECT_EQ(R.get(M).JitInstances, 3u);
}

// --- JavaVm basics -----------------------------------------------------------------

TEST(JavaVm, ThreadLifecycleEvents) {
  JavaVm Vm(smallVm());
  std::vector<std::string> Log;
  Vm.jvmti().onThreadStart(
      [&](JavaThread &T) { Log.push_back("start:" + T.name()); });
  Vm.jvmti().onThreadEnd(
      [&](JavaThread &T) { Log.push_back("end:" + T.name()); });
  JavaThread &T = Vm.startThread("worker", 3);
  EXPECT_EQ(T.cpu(), 3u);
  EXPECT_TRUE(T.isAlive());
  Vm.endThread(T);
  EXPECT_FALSE(T.isAlive());
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0], "start:worker");
  EXPECT_EQ(Log[1], "end:worker");
}

TEST(JavaVm, RoundRobinCpuAssignment) {
  JavaVm Vm(smallVm());
  uint32_t C0 = Vm.startThread("a").cpu();
  uint32_t C1 = Vm.startThread("b").cpu();
  EXPECT_NE(C0, C1);
}

TEST(JavaVm, AllocationPublishesEvent) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  std::vector<AllocationEvent> Events;
  Vm.jvmti().onAllocation(
      [&](const AllocationEvent &E) { Events.push_back(E); });
  ObjectRef A = Vm.allocateArray(T, Vm.types().intArray(), 100);
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Object, A);
  EXPECT_EQ(Events[0].Size, 400u);
  EXPECT_EQ(Events[0].Length, 100u);
  EXPECT_EQ(Events[0].TypeName, "int[]");
  EXPECT_EQ(Events[0].Thread, &T);
}

TEST(JavaVm, AllocationEventsCanBeDisabled) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  int Count = 0;
  Vm.jvmti().onAllocation([&](const AllocationEvent &) { ++Count; });
  Vm.setAllocationEventsEnabled(false);
  Vm.allocateArray(T, Vm.types().intArray(), 10);
  EXPECT_EQ(Count, 0);
  Vm.setAllocationEventsEnabled(true);
  Vm.allocateArray(T, Vm.types().intArray(), 10);
  EXPECT_EQ(Count, 1);
}

TEST(JavaVm, ReadWriteRoundTrip) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  ObjectRef A = Vm.allocateArray(T, Vm.types().longArray(), 8);
  Vm.writeWord(T, A, 16, 77);
  EXPECT_EQ(Vm.readWord(T, A, 16), 77u);
  Vm.writeDouble(T, A, 24, 3.25);
  EXPECT_DOUBLE_EQ(Vm.readDouble(T, A, 24), 3.25);
  Vm.writeU32(T, A, 0, 0xAABB);
  EXPECT_EQ(Vm.readU32(T, A, 0), 0xAABBu);
  Vm.writeU8(T, A, 5, 0x7E);
  EXPECT_EQ(Vm.readU8(T, A, 5), 0x7E);
  EXPECT_EQ(Vm.readU8(T, A, 4), 0); // Neighbour byte untouched.
}

TEST(JavaVm, AccessesChargeCyclesAndFeedPmu) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  ObjectRef A = Vm.allocateArray(T, Vm.types().longArray(), 64);
  uint64_t Before = T.cycles();
  int Fd = T.pmu().openEvent(PerfEventAttr{PerfEventKind::MemAccess, 1000});
  T.pmu().enable();
  Vm.readWord(T, A, 0);
  EXPECT_GT(T.cycles(), Before);
  EXPECT_EQ(T.pmu().eventCount(Fd), 1u);
}

TEST(JavaVm, ArrayCopyCopiesAndCharges) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  ObjectRef Src = Vm.allocateArray(T, Vm.types().longArray(), 8);
  ObjectRef Dst = Vm.allocateArray(T, Vm.types().longArray(), 8);
  for (uint64_t I = 0; I < 8; ++I)
    Vm.writeWord(T, Src, I * 8, I + 1);
  Vm.arrayCopy(T, Src, 0, Dst, 0, 64);
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_EQ(Vm.readWord(T, Dst, I * 8), I + 1);
}

TEST(JavaVm, MultiArrayAllocatesNestedRefs) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  ObjectRef Outer =
      Vm.allocateMultiArray(T, Vm.types().intArray(), {3, 5});
  const ObjectInfo &Info = Vm.heap().info(Outer);
  EXPECT_EQ(Info.Length, 3u);
  EXPECT_TRUE(Vm.types().get(Info.Type).ElemIsRef);
  for (uint64_t I = 0; I < 3; ++I) {
    ObjectRef Row = Vm.readRef(T, Outer, I * 8);
    ASSERT_NE(Row, kNullRef);
    EXPECT_EQ(Vm.heap().info(Row).Length, 5u);
    EXPECT_EQ(Vm.heap().info(Row).Size, 20u);
  }
}

TEST(JavaVm, AsyncGetCallTraceSnapshotsFrames) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  MethodId A = Vm.methods().registerMethod("C", "outer", {{0, 1}});
  MethodId B = Vm.methods().registerMethod("C", "inner", {{0, 2}});
  FrameScope FA(T, A, 0);
  FA.setBci(4);
  FrameScope FB(T, B, 7);
  auto Trace = Vm.asyncGetCallTrace(T);
  ASSERT_EQ(Trace.size(), 2u);
  EXPECT_EQ(Trace[0].Method, A);
  EXPECT_EQ(Trace[0].Bci, 4u);
  EXPECT_EQ(Trace[1].Method, B);
  EXPECT_EQ(Trace[1].Bci, 7u);
}

// --- GC ------------------------------------------------------------------------

TEST(Gc, ReclaimsUnreachableAndPublishesFree) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  std::vector<ObjectFreeEvent> Freed;
  Vm.jvmti().onObjectFree(
      [&](const ObjectFreeEvent &E) { Freed.push_back(E); });
  RootScope Roots(Vm);
  ObjectRef &Live = Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 8));
  ObjectRef Dead = Vm.allocateArray(T, Vm.types().longArray(), 16);
  (void)Dead;
  GcStats S = Vm.requestGc();
  EXPECT_EQ(S.ObjectsFreed, 1u);
  EXPECT_EQ(S.BytesFreed, 128u);
  ASSERT_EQ(Freed.size(), 1u);
  EXPECT_EQ(Freed[0].Size, 128u);
  EXPECT_TRUE(Vm.heap().isObjectStart(Live));
  EXPECT_EQ(Vm.heap().numObjects(), 1u);
}

TEST(Gc, CompactionMovesAndPublishesMoves) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  std::vector<ObjectMoveEvent> Moves;
  Vm.jvmti().onObjectMove(
      [&](const ObjectMoveEvent &E) { Moves.push_back(E); });
  RootScope Roots(Vm);
  ObjectRef Dead = Vm.allocateArray(T, Vm.types().longArray(), 64);
  (void)Dead;
  ObjectRef &Live =
      Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 8));
  Vm.writeWord(T, Live, 0, 1234);
  ObjectRef Before = Live;
  Vm.requestGc();
  EXPECT_NE(Live, Before) << "survivor should slide left";
  ASSERT_EQ(Moves.size(), 1u);
  EXPECT_EQ(Moves[0].OldAddr, Before);
  EXPECT_EQ(Moves[0].NewAddr, Live);
  EXPECT_EQ(Moves[0].Size, 64u);
  // Payload moved with the object.
  EXPECT_EQ(Vm.readWord(T, Live, 0), 1234u);
}

TEST(Gc, UpdatesInteriorReferences) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  TypeId Node = Vm.types().defineClass("Node", 16, {8});
  RootScope Roots(Vm);
  ObjectRef Dead = Vm.allocateArray(T, Vm.types().longArray(), 32);
  (void)Dead;
  ObjectRef &Head = Roots.add(Vm.allocateObject(T, Node));
  ObjectRef Tail = Vm.allocateObject(T, Node);
  Vm.writeRef(T, Head, 8, Tail);
  Vm.writeWord(T, Tail, 0, 99);
  Vm.requestGc();
  ObjectRef NewTail = Vm.readRef(T, Head, 8);
  ASSERT_NE(NewTail, kNullRef);
  EXPECT_TRUE(Vm.heap().isObjectStart(NewTail));
  EXPECT_EQ(Vm.readWord(T, NewTail, 0), 99u);
}

TEST(Gc, RefArraysKeepElementsAlive) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  TypeId Arr = Vm.types().refArrayType("Obj");
  RootScope Roots(Vm);
  ObjectRef &Holder = Roots.add(Vm.allocateArray(T, Arr, 4));
  ObjectRef Elem = Vm.allocateObject(T, Obj);
  Vm.writeRef(T, Holder, 16, Elem);
  GcStats S = Vm.requestGc();
  EXPECT_EQ(S.ObjectsFreed, 0u);
  EXPECT_NE(Vm.readRef(T, Holder, 16), kNullRef);
}

TEST(Gc, GcStartAndFinishNotifications) {
  JavaVm Vm(smallVm());
  int Starts = 0, Finishes = 0;
  GcStats Last;
  Vm.jvmti().onGcStart([&]() { ++Starts; });
  Vm.jvmti().onGcFinish([&](const GcStats &S) {
    ++Finishes;
    Last = S;
  });
  JavaThread &T = Vm.startThread("main", 0);
  Vm.allocateArray(T, Vm.types().longArray(), 8);
  Vm.requestGc();
  EXPECT_EQ(Starts, 1);
  EXPECT_EQ(Finishes, 1);
  EXPECT_EQ(Last.ObjectsFreed, 1u);
}

TEST(Gc, MoveEventsPrecedeFinishNotification) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  std::vector<std::string> Order;
  Vm.jvmti().onObjectMove(
      [&](const ObjectMoveEvent &) { Order.push_back("move"); });
  Vm.jvmti().onGcFinish(
      [&](const GcStats &) { Order.push_back("finish"); });
  RootScope Roots(Vm);
  ObjectRef Dead = Vm.allocateArray(T, Vm.types().longArray(), 8);
  (void)Dead;
  Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 8));
  Vm.requestGc();
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], "move");
  EXPECT_EQ(Order[1], "finish");
}

TEST(Gc, AutoGcOnExhaustionRecyclesAddresses) {
  VmConfig Cfg = smallVm(16 * 1024);
  JavaVm Vm(Cfg);
  JavaThread &T = Vm.startThread("main", 0);
  // Churn 10x the heap; auto-GC must reclaim between allocations.
  for (int I = 0; I < 100; ++I) {
    ObjectRef A = Vm.allocateArray(T, Vm.types().longArray(), 200);
    ASSERT_NE(A, kNullRef);
  }
  EXPECT_GE(Vm.gcTotals().Collections, 9u);
  EXPECT_LE(Vm.heap().usedBytes(), Cfg.HeapBytes);
}

TEST(Gc, RootProvidersVisited) {
  JavaVm Vm(smallVm());
  JavaThread &T = Vm.startThread("main", 0);
  ObjectRef Hidden = Vm.allocateArray(T, Vm.types().longArray(), 8);
  uint64_t Token = Vm.addRootProvider(
      [&](std::vector<ObjectRef *> &Slots) { Slots.push_back(&Hidden); });
  GcStats S = Vm.requestGc();
  EXPECT_EQ(S.ObjectsFreed, 0u);
  EXPECT_TRUE(Vm.heap().isObjectStart(Hidden));
  Vm.removeRootProvider(Token);
  S = Vm.requestGc();
  EXPECT_EQ(S.ObjectsFreed, 1u);
}

TEST(Gc, PeakHeapReflectsBloat) {
  // Loop-allocated garbage spikes the peak; a hoisted allocation does not.
  VmConfig Cfg = smallVm(1 << 20);
  uint64_t PeakBloat, PeakHoist;
  {
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("main", 0);
    for (int I = 0; I < 200; ++I)
      Vm.allocateArray(T, Vm.types().longArray(), 512);
    PeakBloat = Vm.peakHeapBytes();
  }
  {
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("main", 0);
    RootScope Roots(Vm);
    Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 512));
    PeakHoist = Vm.peakHeapBytes();
  }
  EXPECT_GT(PeakBloat, 10 * PeakHoist);
}

/// GC stress property: random object graphs survive collection intact.
class GcStressTest : public ::testing::TestWithParam<int> {};

TEST_P(GcStressTest, RandomGraphSurvivesCollections) {
  JavaVm Vm(smallVm(1 << 20));
  JavaThread &T = Vm.startThread("main", 0);
  TypeId Node = Vm.types().defineClass("Node", 24, {8, 16});
  RootScope Roots(Vm);
  Random Rng(GetParam());

  std::vector<ObjectRef *> Nodes;
  constexpr int kNodes = 64;
  for (int I = 0; I < kNodes; ++I) {
    ObjectRef &R = Roots.add(Vm.allocateObject(T, Node));
    Vm.writeWord(T, R, 0, static_cast<uint64_t>(I));
    Nodes.push_back(&R);
  }
  // Random edges between nodes.
  for (int I = 0; I < kNodes; ++I) {
    Vm.writeRef(T, *Nodes[I], 8, *Nodes[Rng.nextBelow(kNodes)]);
    Vm.writeRef(T, *Nodes[I], 16, *Nodes[Rng.nextBelow(kNodes)]);
  }
  // Garbage + collections interleaved.
  for (int Round = 0; Round < 5; ++Round) {
    for (int I = 0; I < 50; ++I)
      Vm.allocateArray(T, Vm.types().longArray(), 64);
    Vm.requestGc();
    for (int I = 0; I < kNodes; ++I) {
      ASSERT_TRUE(Vm.heap().isObjectStart(*Nodes[I]));
      EXPECT_EQ(Vm.readWord(T, *Nodes[I], 0), static_cast<uint64_t>(I));
      ObjectRef E1 = Vm.readRef(T, *Nodes[I], 8);
      ASSERT_TRUE(E1 == kNullRef || Vm.heap().isObjectStart(E1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcStressTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

} // namespace
