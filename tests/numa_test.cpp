//===- numa_test.cpp - NUMA placement, policy, and boundary-bug tests ------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the NUMA-aware parallel runtime and the boundary fixes that
/// shipped with it: releaseRange's "pages fully inside" contract,
/// Heap::shardOf's reserved-range guard, the page table's tombstone-aware
/// rehash, placement-mutator interactions with the per-CPU memo, the
/// Executor's node-spread CPU mapping and shard placement policies
/// (first-touch / bind / interleave), the per-object node residency
/// histograms with their remediation hints, and jobs-invariance of the
/// rendered reports under every policy. Run under the tsan preset these
/// tests double as the data-race check for the NUMA-aware runtime.
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/HtmlReport.h"
#include "core/Report.h"
#include "jvm/Heap.h"
#include "runtime/Executor.h"
#include "sim/NumaTopology.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(numa_test, 74.0, 58.0,
    "src/sim/NumaTopology.cpp",
    "src/sim/NumaTopology.h");

// --- releaseRange boundary contract ---------------------------------------

TEST(NumaPageTable, ReleaseRangeKeepsPartiallyCoveredBoundaryPages) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.bindRange(0, 8 * 4096, 1); // Pages 0..7 on node 1.
  // [4608, 12800): page 1 and page 3 are only partially covered — a
  // neighbouring live range may still own their other halves — while
  // page 2 ([8192, 12288)) is fully inside and must be forgotten.
  N.releaseRange(4096 + 512, 2 * 4096);
  EXPECT_EQ(N.nodeOfAddr(4096), 1);            // Kept (partial).
  EXPECT_EQ(N.nodeOfAddr(8192), kInvalidNode); // Erased (full).
  EXPECT_EQ(N.nodeOfAddr(12288), 1);           // Kept (partial).
  EXPECT_EQ(N.numPlacedPages(), 7u);
}

TEST(NumaPageTable, ReleaseRangeWithinOnePageErasesNothing) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.bindRange(0, 4096, 0);
  N.releaseRange(100, 200); // No page is fully covered.
  EXPECT_EQ(N.nodeOfAddr(0), 0);
  EXPECT_EQ(N.numPlacedPages(), 1u);
}

TEST(NumaPageTable, ReleaseRangeAlignedStillErasesEverything) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.bindRange(0, 4 * 4096, 1);
  N.releaseRange(0, 4 * 4096);
  EXPECT_EQ(N.numPlacedPages(), 0u);
}

// --- tombstone-aware rehash ------------------------------------------------

TEST(NumaPageTable, EraseHeavyChurnDoesNotGrowTable) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  size_t InitialSlots = N.pageTableSlots();
  // A small live working set recycled thousands of times: tombstones used
  // to count as occupancy forever, doubling the table on every ~700
  // erase/insert cycles even though at most 64 pages are ever live.
  for (int Round = 0; Round < 200; ++Round) {
    N.bindRange(0, 64 * 4096, Round % 2);
    N.releaseRange(0, 64 * 4096);
  }
  EXPECT_EQ(N.numPlacedPages(), 0u);
  EXPECT_EQ(N.pageTableSlots(), InitialSlots)
      << "tombstone churn must rehash in place, not grow";
}

TEST(NumaPageTable, TableStillGrowsForGenuinelyLargePlacements) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  size_t InitialSlots = N.pageTableSlots();
  N.bindRange(0, 4096ULL * 4096, 1); // 4096 live pages > initial slots.
  EXPECT_EQ(N.numPlacedPages(), 4096u);
  EXPECT_GT(N.pageTableSlots(), InitialSlots);
  EXPECT_EQ(N.nodeOfAddr(4095ULL * 4096), 1);
}

// --- placement mutators vs. the per-CPU memo -------------------------------

TEST(Numa, MemoInvalidatedByEveryPlacementMutator) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  // Seed the CPU-0 memo with page 5 on node 0.
  EXPECT_EQ(N.touch(0x5000, 0), 0);

  N.movePage(0x5000, 1); // move_pages migrate mode.
  EXPECT_EQ(N.touch(0x5000, 0), 1) << "stale memo after movePage";

  N.bindRange(0x5000, 4096, 0);
  EXPECT_EQ(N.touch(0x5800, 0), 0) << "stale memo after bindRange";

  N.interleaveRange(0x5000, 4096); // Cursor at 0: page -> node 0.
  EXPECT_EQ(N.touch(0x5000, 4), 0) << "stale memo after interleaveRange";

  N.releaseRange(0x5000, 4096);
  // Released: the next touch is a first touch again — from CPU 4 the page
  // must land on node 1, which a stale memo would contradict.
  EXPECT_EQ(N.touch(0x5000, 4), 1) << "stale memo after releaseRange";
  EXPECT_EQ(N.nodeOfAddr(0x5000), 1);
}

TEST(Numa, InterleaveCursorCarriesAcrossCalls) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.interleaveRange(0, 4096);     // Page 0 -> node 0 (cursor 0).
  N.interleaveRange(4096, 4096);  // Page 1 -> node 1 (cursor 1).
  N.interleaveRange(8192, 4096);  // Page 2 -> node 0 (cursor 2).
  EXPECT_EQ(N.nodeOfAddr(0), 0);
  EXPECT_EQ(N.nodeOfAddr(4096), 1);
  EXPECT_EQ(N.nodeOfAddr(8192), 0);
}

// --- Heap::shardOf reserved range ------------------------------------------

TEST(Heap, ShardOfReservedRangeIsShardZeroInEveryConfiguration) {
  Heap Single(1 << 20, 1);
  Heap Sharded(1 << 20, 4);
  // kNullRef and the rest of the reserved range [0, kArenaBase) used to
  // underflow the sharded computation and land in the *last* shard.
  for (uint64_t Addr : {uint64_t(0), Heap::kArenaBase / 2,
                        Heap::kArenaBase - 1}) {
    EXPECT_EQ(Single.shardOf(Addr), 0u);
    EXPECT_EQ(Sharded.shardOf(Addr), 0u) << "addr " << Addr;
  }
  EXPECT_EQ(Sharded.shardOf(Heap::kArenaBase), 0u);
  EXPECT_EQ(Sharded.shardOf((1 << 20) - 1), 3u);
  // objectContaining on a reserved address must consult shard 0 (and find
  // nothing), not assert in the last shard.
  EXPECT_EQ(Sharded.objectContaining(0), kNullRef);
}

TEST(Heap, ShardOfExactShardBoundariesSplitConsistently) {
  Heap H(1 << 20, 4);
  // shardBase(k) is the first address of shard k; the address one below
  // it must still belong to shard k-1, with no gap and no overlap, and
  // the tail beyond the last even span clamps to the last shard.
  for (unsigned S = 1; S < 4; ++S) {
    EXPECT_EQ(H.shardOf(H.shardBase(S)), S);
    EXPECT_EQ(H.shardOf(H.shardBase(S) - 1), S - 1);
  }
  EXPECT_EQ(H.shardOf(H.shardLimit(3) - 1), 3u);
  EXPECT_EQ(H.shardBase(0), Heap::kArenaBase);
}

// --- assert-guarded contracts (death tests, debug builds only) -------------
//
// The raw arena accessors and the CPU->node map are the two places where a
// bad address/id silently corrupts simulation state instead of failing a
// lookup. Their contracts are asserts, so the death tests only bite in
// builds with asserts enabled (the CI debug job); release runs skip.

TEST(NumaDeath, NodeOfCpuOutOfRangeAssertsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "asserts compiled out (NDEBUG)";
#else
  NumaTopology N(NumaConfig{2, 4, 4096});
  ASSERT_EQ(N.numCpus(), 8u);
  EXPECT_DEATH_IF_SUPPORTED(N.nodeOfCpu(8), "CPU id out of range");
  EXPECT_DEATH_IF_SUPPORTED(N.nodeOfCpu(~0u), "CPU id out of range");
#endif
}

TEST(HeapDeath, RawAccessOutsideArenaAssertsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "asserts compiled out (NDEBUG)";
#else
  Heap H(1 << 16, 2);
  // One word straddling the arena end: Addr + 8 > Capacity even though
  // Addr itself is in range.
  EXPECT_DEATH_IF_SUPPORTED(H.rawReadWord((1 << 16) - 4),
                            "read out of arena");
  EXPECT_DEATH_IF_SUPPORTED(H.rawWriteWord((1 << 16) - 4, 1),
                            "write out of arena");
  EXPECT_DEATH_IF_SUPPORTED(H.rawReadU32((1 << 16) - 2),
                            "read out of arena");
  EXPECT_DEATH_IF_SUPPORTED(H.rawMemmove((1 << 16) - 8, 0, 16),
                            "memmove out of arena");
#endif
}

// --- Executor: node-spread CPU mapping -------------------------------------

ParallelConfig numaConfig(unsigned Jobs, NumaPolicy Policy) {
  ParallelConfig Pc;
  Pc.SimThreads = 4;
  Pc.Jobs = Jobs;
  Pc.QuantumSteps = 4096;
  Pc.Iters = 80;
  Pc.Nlen = 128;
  // 192 KiB hot arrays: above the numaRemote machine's 128 KiB L3, so the
  // neighbour sweeps are DRAM-bound (and L1-missing, hence sampled).
  Pc.HotElems = 24576;
  Pc.HeapBytesPerThread = 224 << 10; // Churn forces safepoint GCs.
  Pc.Policy = Policy;
  return Pc;
}

TEST(NumaRuntime, TasksSpreadAcrossNodesRoundRobin) {
  ParallelConfig Pc = numaConfig(1, NumaPolicy::FirstTouch);
  JavaVm Vm(parallelVmConfig(Pc));
  BytecodeProgram Program = buildParallelWorkerProgram(Vm.types());
  Program.load(Vm);
  ExecutorConfig Ec;
  Ec.Jobs = 1;
  Ec.QuantumSteps = 4096;
  Ec.Policy = NumaPolicy::FirstTouch;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < 4; ++I)
    Ex.addThread(Program, "Main.run",
                 {Value::fromInt(1), Value::fromInt(8), Value::fromInt(8)},
                 "w" + std::to_string(I));
  const NumaTopology &Numa = Vm.machine().numa();
  // Task index round-robins over nodes first: 0 -> node0, 1 -> node1, ...
  EXPECT_EQ(Numa.nodeOfCpu(Ex.thread(0).cpu()), 0);
  EXPECT_EQ(Numa.nodeOfCpu(Ex.thread(1).cpu()), 1);
  EXPECT_EQ(Numa.nodeOfCpu(Ex.thread(2).cpu()), 0);
  EXPECT_EQ(Numa.nodeOfCpu(Ex.thread(3).cpu()), 1);
  // Same node, different CPU (threads never stack on one core).
  EXPECT_NE(Ex.thread(0).cpu(), Ex.thread(2).cpu());
  Ex.run();
  for (size_t I = 0; I < Ex.numTasks(); ++I)
    Vm.endThread(Ex.thread(I));
}

// --- The diagnose -> fix loop: remote ratio per policy ---------------------

/// Remote share of DRAM accesses — the NUMA-relevant denominator, since
/// cache-absorbed accesses never reach a memory controller.
double remoteRatio(NumaPolicy Policy) {
  ParallelConfig Pc = numaConfig(1, Policy);
  JavaVm Vm(numaRemoteVmConfig(Pc));
  ParallelOutcome Out = runNumaRemoteWorkload(Vm, nullptr, Pc);
  EXPECT_GT(Out.Machine.L3Misses, 0u);
  EXPECT_GT(Out.Safepoints, 0u); // Re-binding after compaction exercised.
  return static_cast<double>(Out.Machine.RemoteAccesses) /
         static_cast<double>(Out.Machine.L3Misses);
}

TEST(NumaRuntime, PlacementFixLowersRemoteRatio) {
  double FirstTouch = remoteRatio(NumaPolicy::FirstTouch);
  double Bind = remoteRatio(NumaPolicy::Bind);
  double Interleave = remoteRatio(NumaPolicy::Interleave);
  // The handoff baseline: every sweep of the neighbour's array crosses
  // nodes, so first-touch is remote-heavy...
  EXPECT_GT(FirstTouch, 0.5);
  // ...and both placement fixes lower the ratio strictly (§7.5/§7.6).
  EXPECT_LT(Bind, FirstTouch);
  EXPECT_LT(Interleave, FirstTouch);
  EXPECT_GT(Interleave, 0.0); // Interleaving spreads, it does not zero.
}

// --- Per-object residency histograms + remediation hints -------------------

struct ProfiledRun {
  std::string ObjectReport;
  std::string HtmlReport;
  uint64_t Samples = 0;
  uint64_t RemoteSamples = 0;
  MergedProfile Profile;
};

ProfiledRun runProfiled(unsigned Jobs, NumaPolicy Policy) {
  ParallelConfig Pc = numaConfig(Jobs, Policy);
  JavaVm Vm(numaRemoteVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  runNumaRemoteWorkload(Vm, &Prof, Pc);
  Prof.stop();
  ProfiledRun R;
  R.Profile = Prof.analyze();
  R.ObjectReport = renderObjectCentric(R.Profile, Vm.methods());
  R.HtmlReport = renderHtmlReport(R.Profile, Vm.methods(), ReportOptions(),
                                  "numaRemote");
  R.Samples = Prof.samplesHandled();
  for (const auto &[Node, G] : R.Profile.Groups) {
    (void)Node;
    R.RemoteSamples += G.RemoteSamples;
  }
  return R;
}

TEST(NumaRuntime, ResidencyHistogramsAndBindHintForHandoffArrays) {
  ProfiledRun R = runProfiled(1, NumaPolicy::FirstTouch);
  ASSERT_GT(R.Samples, 0u);
  ASSERT_GT(R.RemoteSamples, 0u);
  // Each hot array is allocated at its own line and swept by exactly one
  // neighbour, so its merged group must carry a home-node histogram and a
  // bind hint targeting the single accessing node.
  bool SawBindHint = false;
  for (const auto &[Node, G] : R.Profile.Groups) {
    (void)Node;
    if (G.RemoteSamples == 0 || G.TypeName != "long[]")
      continue;
    EXPECT_FALSE(G.HomeNodeSamples.empty());
    EXPECT_FALSE(G.AccessNodeSamples.empty());
    PlacementAdvice Advice = placementAdvice(G);
    if (Advice.Hint == PlacementHint::Bind) {
      SawBindHint = true;
      // The dominant accessor's node is the bind target.
      ASSERT_EQ(G.AccessNodeSamples.size(), 1u);
      EXPECT_EQ(Advice.TargetNode, G.AccessNodeSamples.begin()->first);
    }
  }
  EXPECT_TRUE(SawBindHint);
  EXPECT_NE(R.ObjectReport.find("NUMA residency:"), std::string::npos);
  EXPECT_NE(R.ObjectReport.find("NUMA hint: numa_alloc_onnode"),
            std::string::npos);
  EXPECT_NE(R.HtmlReport.find("hint: numa_alloc_onnode"),
            std::string::npos);
}

TEST(NumaAnalyzer, PlacementAdviceCoversAllBranches) {
  MergedGroup G;
  // No samples: no advice.
  EXPECT_EQ(placementAdvice(G).Hint, PlacementHint::None);
  // Low remote share (< 5%): no advice.
  G.AddressSamples = 100;
  G.RemoteSamples = 4;
  G.AccessNodeSamples[0] = 100;
  EXPECT_EQ(placementAdvice(G).Hint, PlacementHint::None);
  // Remote-heavy with one dominant accessor: bind to it.
  G.RemoteSamples = 60;
  G.AccessNodeSamples.clear();
  G.AccessNodeSamples[1] = 90;
  G.AccessNodeSamples[0] = 10;
  PlacementAdvice Bind = placementAdvice(G);
  EXPECT_EQ(Bind.Hint, PlacementHint::Bind);
  EXPECT_EQ(Bind.TargetNode, 1);
  // Remote-heavy with spread accessors: interleave.
  G.AccessNodeSamples[0] = 50;
  G.AccessNodeSamples[1] = 50;
  PlacementAdvice Il = placementAdvice(G);
  EXPECT_EQ(Il.Hint, PlacementHint::Interleave);
  EXPECT_EQ(Il.TargetNode, kInvalidNode);
}

// --- Jobs-invariance under every policy ------------------------------------

TEST(NumaRuntime, ReportsByteIdenticalAcrossJobsUnderEveryPolicy) {
  for (NumaPolicy Policy : {NumaPolicy::FirstTouch, NumaPolicy::Bind,
                            NumaPolicy::Interleave}) {
    ProfiledRun Serial = runProfiled(1, Policy);
    ProfiledRun Parallel = runProfiled(4, Policy);
    EXPECT_EQ(Serial.ObjectReport, Parallel.ObjectReport)
        << "policy " << numaPolicyName(Policy);
    EXPECT_EQ(Serial.HtmlReport, Parallel.HtmlReport)
        << "policy " << numaPolicyName(Policy);
    EXPECT_EQ(Serial.Samples, Parallel.Samples);
    EXPECT_EQ(Serial.RemoteSamples, Parallel.RemoteSamples);
  }
}

// --- Serialisation round trip ----------------------------------------------

TEST(NumaProfile, NodeHistogramsSurviveSerialisation) {
  ThreadProfile P(7, "numa");
  CctNodeId Node = P.cct().insertPath(
      {StackFrame{0, 0}}); // One synthetic frame.
  AllocKey Key{7, Node};
  P.recordAllocation(Node, "long[]", 4096);
  P.recordObjectSample(Key, "long[]", PerfEventKind::L1Miss, Node,
                       /*Remote=*/true, /*HomeNode=*/0, /*CpuNode=*/1);
  P.recordObjectSample(Key, "long[]", PerfEventKind::L1Miss, Node,
                       /*Remote=*/false, /*HomeNode=*/1, /*CpuNode=*/1);

  std::stringstream SS;
  P.writeTo(SS);
  ThreadProfile Back;
  ASSERT_TRUE(Back.readFrom(SS));
  const ObjectGroupStats &G = Back.groups().at(Key);
  EXPECT_EQ(G.RemoteSamples, 1u);
  EXPECT_EQ(G.AddressSamples, 2u);
  ASSERT_EQ(G.HomeNodeSamples.size(), 2u);
  EXPECT_EQ(G.HomeNodeSamples.at(0), 1u);
  EXPECT_EQ(G.HomeNodeSamples.at(1), 1u);
  ASSERT_EQ(G.AccessNodeSamples.size(), 1u);
  EXPECT_EQ(G.AccessNodeSamples.at(1), 2u);
}

} // namespace
