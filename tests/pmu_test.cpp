//===- pmu_test.cpp - Unit tests for src/pmu ---------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "pmu/Pmu.h"

#include <gtest/gtest.h>

using namespace djx;

namespace {

AccessResult l1MissResult() {
  AccessResult R;
  R.L1Miss = true;
  R.LatencyCycles = 12;
  R.HomeNode = 0;
  return R;
}

AccessResult hitResult() {
  AccessResult R;
  R.LatencyCycles = 4;
  return R;
}

TEST(Pmu, DisabledCountsNothing) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 10, 64});
  P.observeAccess(0, 0x100, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 0u);
}

TEST(Pmu, CountsMatchingEventsOnly) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 1000, 64});
  P.enable();
  P.observeAccess(0, 0x100, l1MissResult());
  P.observeAccess(0, 0x140, hitResult());
  P.observeAccess(0, 0x180, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 2u);
}

TEST(Pmu, OverflowDeliversPreciseSample) {
  PmuContext P(7);
  P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 3, 64});
  std::vector<PerfSample> Samples;
  P.setSampleHandler([&](const PerfSample &S) { Samples.push_back(S); });
  P.enable();
  for (int I = 0; I < 7; ++I)
    P.observeAccess(2, 0x1000 + static_cast<uint64_t>(I) * 64,
                    l1MissResult());
  // Period 3: samples at occurrences 3 and 6.
  ASSERT_EQ(Samples.size(), 2u);
  EXPECT_EQ(Samples[0].EffectiveAddress, 0x1000u + 2 * 64);
  EXPECT_EQ(Samples[1].EffectiveAddress, 0x1000u + 5 * 64);
  EXPECT_EQ(Samples[0].Cpu, 2u);
  EXPECT_EQ(Samples[0].ThreadId, 7u);
  EXPECT_EQ(Samples[0].Kind, PerfEventKind::L1Miss);
  EXPECT_EQ(Samples[0].LatencyCycles, 12u);
}

TEST(Pmu, MemAccessEventCountsEverything) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 1000, 64});
  P.enable();
  P.observeAccess(0, 0, hitResult());
  P.observeAccess(0, 0, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 2u);
}

TEST(Pmu, LoadLatencyThreshold) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::LoadLatency, 1000, 100});
  P.enable();
  AccessResult Slow;
  Slow.LatencyCycles = 250;
  AccessResult Fast;
  Fast.LatencyCycles = 40;
  P.observeAccess(0, 0, Slow);
  P.observeAccess(0, 0, Fast);
  EXPECT_EQ(P.eventCount(Fd), 1u);
}

TEST(Pmu, RemoteAccessEvent) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::RemoteAccess, 1, 64});
  std::vector<PerfSample> Samples;
  P.setSampleHandler([&](const PerfSample &S) { Samples.push_back(S); });
  P.enable();
  AccessResult Remote;
  Remote.L1Miss = Remote.L2Miss = Remote.L3Miss = true;
  Remote.RemoteAccess = true;
  Remote.HomeNode = 1;
  P.observeAccess(0, 0x42, Remote);
  EXPECT_EQ(P.eventCount(Fd), 1u);
  ASSERT_EQ(Samples.size(), 1u);
  EXPECT_TRUE(Samples[0].RemoteAccess);
  EXPECT_EQ(Samples[0].HomeNode, 1);
}

TEST(Pmu, TlbAndLevelEvents) {
  PmuContext P(1);
  int L2 = P.openEvent(PerfEventAttr{PerfEventKind::L2Miss, 1000, 64});
  int L3 = P.openEvent(PerfEventAttr{PerfEventKind::L3Miss, 1000, 64});
  int Tlb = P.openEvent(PerfEventAttr{PerfEventKind::TlbMiss, 1000, 64});
  P.enable();
  AccessResult R;
  R.L1Miss = R.L2Miss = true;
  R.TlbMiss = true;
  P.observeAccess(0, 0, R);
  EXPECT_EQ(P.eventCount(L2), 1u);
  EXPECT_EQ(P.eventCount(L3), 0u);
  EXPECT_EQ(P.eventCount(Tlb), 1u);
}

TEST(Pmu, MultipleEventsSampleIndependently) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 2, 64});
  P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 1, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  P.observeAccess(0, 0, l1MissResult()); // L1 fires; MemAccess at 1/2.
  P.observeAccess(0, 0, hitResult());    // MemAccess fires.
  EXPECT_EQ(Delivered, 2);
  EXPECT_EQ(P.samplesDelivered(), 2u);
}

TEST(Pmu, DisableStopsSampling) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 1, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  P.observeAccess(0, 0, hitResult());
  P.disable();
  P.observeAccess(0, 0, hitResult());
  EXPECT_EQ(Delivered, 1);
}

TEST(Pmu, PeriodRestartsAfterSample) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 4, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  for (int I = 0; I < 12; ++I)
    P.observeAccess(0, 0, hitResult());
  EXPECT_EQ(Delivered, 3);
}

TEST(Pmu, EventNamesMatchIntelMnemonics) {
  EXPECT_EQ(perfEventName(PerfEventKind::L1Miss),
            "MEM_LOAD_UOPS_RETIRED:L1_MISS");
  EXPECT_EQ(perfEventName(PerfEventKind::TlbMiss), "DTLB_LOAD_MISSES");
  EXPECT_EQ(perfEventName(PerfEventKind::LoadLatency),
            "MEM_TRANS_RETIRED:LOAD_LATENCY");
}

/// Sampling-rate property: delivered samples == floor(events / period).
class PmuPeriodTest : public ::testing::TestWithParam<int> {};

TEST_P(PmuPeriodTest, SampleCountMatchesPeriod) {
  uint64_t Period = GetParam();
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, Period, 64});
  uint64_t Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  constexpr uint64_t kEvents = 1000;
  for (uint64_t I = 0; I < kEvents; ++I)
    P.observeAccess(0, I, hitResult());
  EXPECT_EQ(Delivered, kEvents / Period);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PmuPeriodTest,
                         ::testing::Values(1, 2, 7, 32, 100, 999, 1001));

} // namespace
