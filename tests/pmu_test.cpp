//===- pmu_test.cpp - Unit tests for src/pmu ---------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "pmu/Pmu.h"

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "jvm/JavaVm.h"
#include "pmu/SampleRing.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(pmu_test, 80.0, 54.0,
    "src/pmu/PerfEvent.h",
    "src/pmu/Pmu.cpp",
    "src/pmu/Pmu.h",
    "src/pmu/SampleRing.h");

AccessResult l1MissResult() {
  AccessResult R;
  R.L1Miss = true;
  R.LatencyCycles = 12;
  R.HomeNode = 0;
  return R;
}

AccessResult hitResult() {
  AccessResult R;
  R.LatencyCycles = 4;
  return R;
}

TEST(Pmu, DisabledCountsNothing) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 10, 64});
  P.observeAccess(0, 0x100, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 0u);
}

TEST(Pmu, CountsMatchingEventsOnly) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 1000, 64});
  P.enable();
  P.observeAccess(0, 0x100, l1MissResult());
  P.observeAccess(0, 0x140, hitResult());
  P.observeAccess(0, 0x180, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 2u);
}

TEST(Pmu, OverflowDeliversPreciseSample) {
  PmuContext P(7);
  P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 3, 64});
  std::vector<PerfSample> Samples;
  P.setSampleHandler([&](const PerfSample &S) { Samples.push_back(S); });
  P.enable();
  for (int I = 0; I < 7; ++I)
    P.observeAccess(2, 0x1000 + static_cast<uint64_t>(I) * 64,
                    l1MissResult());
  // Period 3: samples at occurrences 3 and 6.
  ASSERT_EQ(Samples.size(), 2u);
  EXPECT_EQ(Samples[0].EffectiveAddress, 0x1000u + 2 * 64);
  EXPECT_EQ(Samples[1].EffectiveAddress, 0x1000u + 5 * 64);
  EXPECT_EQ(Samples[0].Cpu, 2u);
  EXPECT_EQ(Samples[0].ThreadId, 7u);
  EXPECT_EQ(Samples[0].Kind, PerfEventKind::L1Miss);
  EXPECT_EQ(Samples[0].LatencyCycles, 12u);
}

TEST(Pmu, MemAccessEventCountsEverything) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 1000, 64});
  P.enable();
  P.observeAccess(0, 0, hitResult());
  P.observeAccess(0, 0, l1MissResult());
  EXPECT_EQ(P.eventCount(Fd), 2u);
}

TEST(Pmu, LoadLatencyThreshold) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::LoadLatency, 1000, 100});
  P.enable();
  AccessResult Slow;
  Slow.LatencyCycles = 250;
  AccessResult Fast;
  Fast.LatencyCycles = 40;
  P.observeAccess(0, 0, Slow);
  P.observeAccess(0, 0, Fast);
  EXPECT_EQ(P.eventCount(Fd), 1u);
}

TEST(Pmu, RemoteAccessEvent) {
  PmuContext P(1);
  int Fd = P.openEvent(PerfEventAttr{PerfEventKind::RemoteAccess, 1, 64});
  std::vector<PerfSample> Samples;
  P.setSampleHandler([&](const PerfSample &S) { Samples.push_back(S); });
  P.enable();
  AccessResult Remote;
  Remote.L1Miss = Remote.L2Miss = Remote.L3Miss = true;
  Remote.RemoteAccess = true;
  Remote.HomeNode = 1;
  P.observeAccess(0, 0x42, Remote);
  EXPECT_EQ(P.eventCount(Fd), 1u);
  ASSERT_EQ(Samples.size(), 1u);
  EXPECT_TRUE(Samples[0].RemoteAccess);
  EXPECT_EQ(Samples[0].HomeNode, 1);
}

TEST(Pmu, TlbAndLevelEvents) {
  PmuContext P(1);
  int L2 = P.openEvent(PerfEventAttr{PerfEventKind::L2Miss, 1000, 64});
  int L3 = P.openEvent(PerfEventAttr{PerfEventKind::L3Miss, 1000, 64});
  int Tlb = P.openEvent(PerfEventAttr{PerfEventKind::TlbMiss, 1000, 64});
  P.enable();
  AccessResult R;
  R.L1Miss = R.L2Miss = true;
  R.TlbMiss = true;
  P.observeAccess(0, 0, R);
  EXPECT_EQ(P.eventCount(L2), 1u);
  EXPECT_EQ(P.eventCount(L3), 0u);
  EXPECT_EQ(P.eventCount(Tlb), 1u);
}

TEST(Pmu, MultipleEventsSampleIndependently) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 2, 64});
  P.openEvent(PerfEventAttr{PerfEventKind::L1Miss, 1, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  P.observeAccess(0, 0, l1MissResult()); // L1 fires; MemAccess at 1/2.
  P.observeAccess(0, 0, hitResult());    // MemAccess fires.
  EXPECT_EQ(Delivered, 2);
  EXPECT_EQ(P.samplesDelivered(), 2u);
}

TEST(Pmu, DisableStopsSampling) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 1, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  P.observeAccess(0, 0, hitResult());
  P.disable();
  P.observeAccess(0, 0, hitResult());
  EXPECT_EQ(Delivered, 1);
}

TEST(Pmu, PeriodRestartsAfterSample) {
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, 4, 64});
  int Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  for (int I = 0; I < 12; ++I)
    P.observeAccess(0, 0, hitResult());
  EXPECT_EQ(Delivered, 3);
}

TEST(Pmu, EventNamesMatchIntelMnemonics) {
  EXPECT_EQ(perfEventName(PerfEventKind::L1Miss),
            "MEM_LOAD_UOPS_RETIRED:L1_MISS");
  EXPECT_EQ(perfEventName(PerfEventKind::TlbMiss), "DTLB_LOAD_MISSES");
  EXPECT_EQ(perfEventName(PerfEventKind::LoadLatency),
            "MEM_TRANS_RETIRED:LOAD_LATENCY");
}

/// Sampling-rate property: delivered samples == floor(events / period).
class PmuPeriodTest : public ::testing::TestWithParam<int> {};

TEST_P(PmuPeriodTest, SampleCountMatchesPeriod) {
  uint64_t Period = GetParam();
  PmuContext P(1);
  P.openEvent(PerfEventAttr{PerfEventKind::MemAccess, Period, 64});
  uint64_t Delivered = 0;
  P.setSampleHandler([&](const PerfSample &) { ++Delivered; });
  P.enable();
  constexpr uint64_t kEvents = 1000;
  for (uint64_t I = 0; I < kEvents; ++I)
    P.observeAccess(0, I, hitResult());
  EXPECT_EQ(Delivered, kEvents / Period);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PmuPeriodTest,
                         ::testing::Values(1, 2, 7, 32, 100, 999, 1001));

// --- SampleRing edges -------------------------------------------------------

TEST(SampleRing, PushReportsFullExactlyAtCapacity) {
  SampleRing Ring;
  BufferedSample S;
  for (size_t I = 0; I + 1 < SampleRing::kCapacity; ++I)
    ASSERT_FALSE(Ring.push(S)) << "premature full at " << I;
  EXPECT_TRUE(Ring.push(S)); // The kCapacity-th push demands a drain.
  EXPECT_EQ(Ring.size(), SampleRing::kCapacity);
  // Past capacity the ring keeps accepting (the owner drains on the
  // returned signal, not by having appends rejected) and keeps asking.
  EXPECT_TRUE(Ring.push(S));
  Ring.clear();
  EXPECT_TRUE(Ring.empty());
  EXPECT_FALSE(Ring.push(S)); // Fresh window after the drain.
}

/// A workload sized so the ring fills several times between GCs: period-1
/// MemAccess sampling turns every simulated access into a buffered
/// sample, so 5x capacity accesses forces capacity-triggered self-drains
/// with no safepoint in sight. The drained profile must be byte-identical
/// to inline resolution of the same run.
TEST(SampleRingEdge, CapacitySelfDrainMatchesInlineResolution) {
  auto run = [](bool Batched) {
    JavaVm Vm;
    DjxPerfConfig Cfg;
    Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 1, 64}};
    Cfg.MinObjectSize = 64;
    Cfg.BatchedSampleResolution = Batched;
    DjxPerf Prof(Vm, Cfg);
    EXPECT_EQ(Prof.batchedResolutionActive(), Batched);
    Prof.start();
    JavaThread &T = Vm.startThread("ringfull", 0);
    RootScope Roots(Vm);
    ObjectRef &Hot =
        Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 128));
    constexpr uint64_t kReads = 5 * SampleRing::kCapacity;
    for (uint64_t I = 0; I < kReads; ++I)
      Vm.readWord(T, Hot, (I % 128) * 8);
    Prof.stop();
    std::pair<std::string, uint64_t> Out{
        renderObjectCentric(Prof.analyze(), Vm.methods()),
        Prof.samplesHandled()};
    Vm.endThread(T);
    return Out;
  };
  auto [BatchedReport, BatchedSamples] = run(true);
  auto [InlineReport, InlineSamples] = run(false);
  // Several self-drains actually happened (reads alone exceed capacity
  // five times over), and nothing observable moved.
  EXPECT_GT(BatchedSamples, 5 * SampleRing::kCapacity);
  EXPECT_EQ(BatchedSamples, InlineSamples);
  EXPECT_EQ(BatchedReport, InlineReport);
}

/// stop() drains every ring; a thread whose ring is empty (monitored but
/// never sampled) must contribute nothing and break nothing.
TEST(SampleRingEdge, StopWithEmptyRingsIsCleanAndEmpty) {
  JavaVm Vm;
  DjxPerf Prof(Vm); // Batched by default.
  ASSERT_TRUE(Prof.batchedResolutionActive());
  Prof.start();
  JavaThread &T = Vm.startThread("idle", 0);
  Prof.stop(); // No accesses at all: every ring drains empty.
  EXPECT_EQ(Prof.samplesHandled(), 0u);
  MergedProfile M = Prof.analyze();
  EXPECT_TRUE(M.Groups.empty());
  EXPECT_EQ(M.UnattributedSamples, 0u);
  Vm.endThread(T);
}

/// Batching is only sound when the profiler observes every GC move and
/// free (the epoch snapshot's staleness proof depends on it), so the
/// effective switch must force off when either interposition is disabled
/// — and the forced-off path must still produce the inline answer.
TEST(SampleRingEdge, BatchingForcesOffWithoutFullGcInterposition) {
  struct Case {
    bool Moves, Frees, Expected;
  } Cases[] = {
      {true, true, true},
      {false, true, false},
      {true, false, false},
      {false, false, false},
  };
  for (const Case &C : Cases) {
    JavaVm Vm;
    DjxPerfConfig Cfg;
    Cfg.BatchedSampleResolution = true; // Requested...
    Cfg.HandleGcMoves = C.Moves;
    Cfg.HandleGcFrees = C.Frees;
    DjxPerf Prof(Vm, Cfg);
    EXPECT_EQ(Prof.batchedResolutionActive(), C.Expected)
        << "moves=" << C.Moves << " frees=" << C.Frees;
  }

  // Equivalence on the forced-off path: requesting batching with moves
  // interposition off must behave exactly like explicitly-inline config
  // with the same interposition flags.
  auto run = [](bool RequestBatching) {
    JavaVm Vm;
    DjxPerfConfig Cfg;
    Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 3, 64}};
    Cfg.MinObjectSize = 64;
    Cfg.BatchedSampleResolution = RequestBatching;
    Cfg.HandleGcMoves = false;
    DjxPerf Prof(Vm, Cfg);
    EXPECT_FALSE(Prof.batchedResolutionActive());
    Prof.start();
    JavaThread &T = Vm.startThread("forcedoff", 0);
    RootScope Roots(Vm);
    ObjectRef &A =
        Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 256));
    for (uint64_t I = 0; I < 3000; ++I)
      Vm.readWord(T, A, (I % 256) * 8);
    Prof.stop();
    std::string Report = renderObjectCentric(Prof.analyze(), Vm.methods());
    Vm.endThread(T);
    return Report;
  };
  EXPECT_EQ(run(true), run(false));
}

} // namespace
