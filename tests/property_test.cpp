//===- property_test.cpp - Randomised invariant checks -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based suites over the profiler's load-bearing invariants:
/// cache LRU behaviour vs a reference model, CCT path round-trips,
/// profile serialisation round-trips on random profiles, full-profiler
/// attribution conservation (every sample is attributed or counted
/// unattributed, never lost or duplicated), and merge commutativity.
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <sstream>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(property_test, 0.0, 0.0);

// --- Cache vs reference LRU model ---------------------------------------------

class CacheModelTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheModelTest, MatchesReferenceLru) {
  // Fully-associative config so a simple LRU list is an exact model.
  CacheConfig Cfg{4096, 64, 64}; // One set, 64 ways.
  Cache C(Cfg);
  std::list<uint64_t> Model; // Front = MRU, lines.
  Random Rng(GetParam());
  for (int I = 0; I < 20000; ++I) {
    uint64_t Line = Rng.nextBelow(256);
    bool Hit = C.access(Line * 64);
    auto It = std::find(Model.begin(), Model.end(), Line);
    bool ModelHit = It != Model.end();
    ASSERT_EQ(Hit, ModelHit) << "op " << I << " line " << Line;
    if (ModelHit)
      Model.erase(It);
    Model.push_front(Line);
    if (Model.size() > 64)
      Model.pop_back();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelTest, ::testing::Values(1, 2, 7));

// --- CCT round-trips ------------------------------------------------------------

class CctRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CctRoundTripTest, RandomPathsRoundTripAndShare) {
  Random Rng(GetParam());
  Cct Tree;
  std::vector<std::vector<StackFrame>> Paths;
  std::vector<CctNodeId> Leaves;
  for (int I = 0; I < 300; ++I) {
    std::vector<StackFrame> P;
    size_t Depth = 1 + Rng.nextBelow(8);
    for (size_t D = 0; D < Depth; ++D)
      P.push_back(StackFrame{static_cast<MethodId>(Rng.nextBelow(12)),
                             static_cast<uint32_t>(Rng.nextBelow(6))});
    Leaves.push_back(Tree.insertPath(P));
    Paths.push_back(std::move(P));
  }
  // Round-trip every path.
  for (size_t I = 0; I < Paths.size(); ++I) {
    std::vector<StackFrame> Back = Tree.path(Leaves[I]);
    ASSERT_EQ(Back.size(), Paths[I].size());
    for (size_t D = 0; D < Back.size(); ++D) {
      EXPECT_EQ(Back[D].Method, Paths[I][D].Method);
      EXPECT_EQ(Back[D].Bci, Paths[I][D].Bci);
    }
    // Determinism: re-inserting returns the same leaf.
    EXPECT_EQ(Tree.insertPath(Paths[I]), Leaves[I]);
  }
  // Compactness: node count is bounded by total frames + root and, with
  // only 12x6 possible labels, far below it (prefix sharing).
  size_t TotalFrames = 0;
  for (const auto &P : Paths)
    TotalFrames += P.size();
  EXPECT_LE(Tree.size(), TotalFrames + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CctRoundTripTest,
                         ::testing::Values(3, 17, 99));

// --- Profile serialisation fuzz ---------------------------------------------------

class ProfileFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileFuzzTest, RandomProfileSerialisationRoundTrips) {
  Random Rng(GetParam());
  ThreadProfile P(1 + Rng.nextBelow(100), "t" + std::to_string(GetParam()));
  std::vector<CctNodeId> Nodes{kCctRoot};
  for (int I = 0; I < 40; ++I)
    Nodes.push_back(P.cct().child(
        Nodes[Rng.nextBelow(Nodes.size())],
        static_cast<MethodId>(Rng.nextBelow(10)),
        static_cast<uint32_t>(Rng.nextBelow(20))));
  for (int I = 0; I < 200; ++I) {
    CctNodeId N = Nodes[Rng.nextBelow(Nodes.size())];
    switch (Rng.nextBelow(4)) {
    case 0:
      P.recordAllocation(N, "T" + std::to_string(Rng.nextBelow(5)),
                         8 << Rng.nextBelow(10));
      break;
    case 1:
      P.recordObjectSample(
          AllocKey{Rng.nextBelow(3), Nodes[Rng.nextBelow(Nodes.size())]},
          "T", static_cast<PerfEventKind>(Rng.nextBelow(7)), N,
          Rng.nextBool(0.3));
      break;
    case 2:
      P.recordCodeSample(N, static_cast<PerfEventKind>(Rng.nextBelow(7)));
      break;
    default:
      P.recordUnattributed(static_cast<PerfEventKind>(Rng.nextBelow(7)));
    }
  }
  std::stringstream S1;
  P.writeTo(S1);
  ThreadProfile Q;
  ASSERT_TRUE(Q.readFrom(S1));
  std::stringstream S2, S3;
  P.writeTo(S2);
  Q.writeTo(S3);
  EXPECT_EQ(S2.str(), S3.str()) << "write(read(write(p))) == write(p)";
  EXPECT_EQ(Q.groups().size(), P.groups().size());
  EXPECT_EQ(Q.unattributedSamples(), P.unattributedSamples());
  for (size_t K = 0; K < kNumPerfEventKinds; ++K)
    EXPECT_EQ(Q.totals().Counts[K], P.totals().Counts[K]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- Attribution conservation -------------------------------------------------------

class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, EverySampleAttributedOrUnattributedExactlyOnce) {
  // Random workload under the full profiler: attributed + unattributed
  // must equal the samples delivered, before and after merging.
  VmConfig Cfg;
  Cfg.HeapBytes = 512 * 1024;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 7, 64}};
  Agent.MinObjectSize = 64;
  DjxPerf Prof(Vm, Agent);
  Prof.start();

  Random Rng(GetParam());
  JavaThread &T = Vm.startThread("main", 0);
  MethodId M = Vm.methods().registerMethod("Fuzz", "run", {{0, 1}});
  FrameScope F(T, M, 0);
  RootScope Roots(Vm);
  std::vector<ObjectRef *> Live;
  for (int I = 0; I < 16; ++I)
    Live.push_back(&Roots.add());
  for (int Op = 0; Op < 4000; ++Op) {
    uint64_t R = Rng.nextBelow(100);
    ObjectRef &Slot = *Live[Rng.nextBelow(Live.size())];
    if (R < 25) {
      F.setBci(static_cast<uint32_t>(Rng.nextBelow(8)));
      Slot = Vm.allocateArray(T, Vm.types().longArray(),
                              8 << Rng.nextBelow(6));
    } else if (R < 30) {
      Slot = kNullRef;
    } else if (R < 32) {
      Vm.requestGc();
    } else if (Slot != kNullRef) {
      const ObjectInfo &Info = Vm.heap().info(Slot);
      uint64_t Off = (Rng.nextBelow(Info.Size / 8)) * 8;
      if (Rng.nextBool(0.5))
        Vm.readWord(T, Slot, Off);
      else
        Vm.writeWord(T, Slot, Off, R);
    }
  }
  Prof.stop();

  MergedProfile Merged = Prof.analyze();
  uint64_t Attributed = 0;
  for (const auto &[Node, G] : Merged.Groups) {
    (void)Node;
    Attributed += G.Metrics.get(PerfEventKind::MemAccess);
  }
  EXPECT_EQ(Attributed + Merged.UnattributedSamples,
            Prof.samplesHandled());
  EXPECT_EQ(Merged.Totals.get(PerfEventKind::MemAccess),
            Prof.samplesHandled());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(5, 6, 7, 8));

// --- Merge properties -----------------------------------------------------------------

TEST(MergeProperties, OrderIndependent) {
  auto Make = [](uint64_t Tid, MethodId M) {
    ThreadProfile P(Tid, "t" + std::to_string(Tid));
    CctNodeId N = P.cct().insertPath({{M, 0}});
    P.recordAllocation(N, "X", 128);
    P.recordObjectSample(AllocKey{Tid, N}, "X", PerfEventKind::L1Miss, N,
                         false);
    return P;
  };
  ThreadProfile A = Make(1, 7), B = Make(2, 7), C = Make(3, 9);
  MergedProfile M1 = mergeProfiles({&A, &B, &C});
  MergedProfile M2 = mergeProfiles({&C, &B, &A});
  EXPECT_EQ(M1.Groups.size(), M2.Groups.size());
  EXPECT_EQ(M1.Totals.get(PerfEventKind::L1Miss),
            M2.Totals.get(PerfEventKind::L1Miss));
  // Same multiset of (path, metrics) regardless of order.
  auto Summarise = [](const MergedProfile &M) {
    std::vector<std::pair<size_t, uint64_t>> Out;
    for (const auto &[Node, G] : M.Groups)
      Out.emplace_back(M.Tree.path(Node).size(),
                       G.Metrics.get(PerfEventKind::L1Miss));
    std::sort(Out.begin(), Out.end());
    return Out;
  };
  EXPECT_EQ(Summarise(M1), Summarise(M2));
}

TEST(MergeProperties, MergeIsLossless) {
  // Sum of per-thread totals equals merged totals.
  Random Rng(123);
  std::vector<ThreadProfile> Parts;
  for (uint64_t Tid = 1; Tid <= 4; ++Tid) {
    ThreadProfile P(Tid, "t");
    CctNodeId N = P.cct().insertPath(
        {{static_cast<MethodId>(Rng.nextBelow(4)), 0}});
    for (int I = 0; I < 50; ++I)
      P.recordObjectSample(AllocKey{Tid, N}, "X",
                           static_cast<PerfEventKind>(Rng.nextBelow(7)), N,
                           false);
    Parts.push_back(std::move(P));
  }
  MetricCounts Sum;
  std::vector<const ThreadProfile *> Ptrs;
  for (const ThreadProfile &P : Parts) {
    Sum += P.totals();
    Ptrs.push_back(&P);
  }
  MergedProfile M = mergeProfiles(Ptrs);
  for (size_t K = 0; K < kNumPerfEventKinds; ++K)
    EXPECT_EQ(M.Totals.Counts[K], Sum.Counts[K]);
}

} // namespace
