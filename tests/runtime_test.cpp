//===- runtime_test.cpp - Executor / safepoint runtime tests ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the parallel profiling runtime: the Executor's round/quantum
/// schedule, the safepoint GC protocol (allocation-fault parking and
/// re-execution), worker-private machine state with deterministic merge,
/// attach-mode profiling from worker threads, and jobs-invariance of every
/// observable outcome. Run under the tsan preset these tests double as the
/// data-race check for the runtime.
///
//===----------------------------------------------------------------------===//

#include "bytecode/MethodBuilder.h"
#include "core/DjxPerf.h"
#include "core/Report.h"
#include "runtime/Executor.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(runtime_test, 68.0, 45.0,
    "src/runtime/Executor.cpp",
    "src/runtime/Executor.h",
    "src/runtime/Safepoint.cpp",
    "src/runtime/Safepoint.h",
    "src/workloads/Parallel.cpp",
    "src/workloads/Parallel.h");

ParallelConfig smallConfig(unsigned Jobs) {
  ParallelConfig Pc;
  Pc.SimThreads = 4;
  Pc.Jobs = Jobs;
  Pc.QuantumSteps = 4096; // Small quanta: many rounds, many barriers.
  Pc.Iters = 250;         // 250 x 512 B churn > the shard's free space.
  Pc.Nlen = 128;
  Pc.HotElems = 4096;                // 32 KiB hot array.
  Pc.HeapBytesPerThread = 128 << 10; // Churn forces safepoint GCs.
  return Pc;
}

struct Outcome {
  ParallelOutcome Run;
  uint64_t TotalCycles = 0;
  uint64_t Collections = 0;
  uint64_t PeakHeap = 0;
  std::vector<int64_t> Results;
};

Outcome runNative(const ParallelConfig &Pc) {
  JavaVm Vm(parallelVmConfig(Pc));
  Outcome O;
  O.Run = runParallelWorkload(Vm, nullptr, Pc);
  O.TotalCycles = Vm.totalCycles();
  O.Collections = Vm.gcTotals().Collections;
  O.PeakHeap = Vm.peakHeapBytes();
  return O;
}

TEST(Executor, RunsTasksToCompletion) {
  ParallelConfig Pc = smallConfig(2);
  JavaVm Vm(parallelVmConfig(Pc));
  BytecodeProgram Program = buildParallelWorkerProgram(Vm.types());
  Program.load(Vm);

  ExecutorConfig Ec;
  Ec.Jobs = 2;
  Ec.QuantumSteps = Pc.QuantumSteps;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < 3; ++I)
    Ex.addThread(Program, "Main.run",
                 {Value::fromInt(Pc.Iters), Value::fromInt(Pc.Nlen),
                  Value::fromInt(Pc.HotElems)},
                 "w" + std::to_string(I));
  Ex.run();

  EXPECT_GT(Ex.totalSteps(), 0u);
  EXPECT_GT(Ex.rounds(), 1u);
  // All three ran the same program: identical return values.
  std::optional<Value> R0 = Ex.result(0);
  ASSERT_TRUE(R0.has_value());
  for (size_t I = 1; I < 3; ++I) {
    std::optional<Value> R = Ex.result(I);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->asInt(), R0->asInt());
  }
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_FALSE(Ex.interpreter(I).hasPendingCall());
    EXPECT_TRUE(Ex.thread(I).isAlive());
    Vm.endThread(Ex.thread(I));
  }
  // Each thread burned simulated cycles. (Clocks are NOT equal across
  // threads: shard bases shift every object's cache-line alignment, so
  // identical programs see different — but deterministic — miss counts.)
  for (size_t I = 0; I < 3; ++I)
    EXPECT_GT(Ex.thread(I).cycles(), 0u);
}

TEST(Executor, SafepointGcRunsAndPreservesLiveObjects) {
  ParallelConfig Pc = smallConfig(2);
  Outcome O = runNative(Pc);
  // The churn exceeds each 128 KiB shard: safepoint GCs must have fired,
  // via the deferred (GcRequest) protocol, and the workload still
  // completed with the full step count.
  EXPECT_GT(O.Run.Safepoints, 0u);
  EXPECT_EQ(O.Collections, O.Run.Safepoints);
  EXPECT_GT(O.Run.Steps, 0u);
}

TEST(Executor, OutcomeIsInvariantAcrossJobs) {
  Outcome O1 = runNative(smallConfig(1));
  Outcome O2 = runNative(smallConfig(2));
  Outcome O4 = runNative(smallConfig(4));
  for (const Outcome *O : {&O2, &O4}) {
    EXPECT_EQ(O->Run.Steps, O1.Run.Steps);
    EXPECT_EQ(O->Run.Safepoints, O1.Run.Safepoints);
    EXPECT_EQ(O->Run.Rounds, O1.Run.Rounds);
    EXPECT_EQ(O->TotalCycles, O1.TotalCycles);
    EXPECT_EQ(O->Collections, O1.Collections);
    EXPECT_EQ(O->PeakHeap, O1.PeakHeap);
    EXPECT_EQ(O->Run.Machine.Accesses, O1.Run.Machine.Accesses);
    EXPECT_EQ(O->Run.Machine.L1Misses, O1.Run.Machine.L1Misses);
    EXPECT_EQ(O->Run.Machine.L2Misses, O1.Run.Machine.L2Misses);
    EXPECT_EQ(O->Run.Machine.L3Misses, O1.Run.Machine.L3Misses);
    EXPECT_EQ(O->Run.Machine.TlbMisses, O1.Run.Machine.TlbMisses);
    EXPECT_EQ(O->Run.Machine.TotalLatency, O1.Run.Machine.TotalLatency);
  }
}

// A shard too small for its thread's live data must surface a typed
// OutOfMemory error, not loop park -> safepoint GC -> park forever (and
// not abort the process: the profile up to the failure is salvageable).
TEST(Executor, ReportsOutOfMemoryWhenGcCannotHelp) {
  for (unsigned Jobs : {1u, 2u}) {
    ParallelConfig Pc = smallConfig(Jobs);
    Pc.SimThreads = Jobs == 1 ? 1 : 2;
    Pc.HotElems = 1 << 20; // 8 MiB hot array vs a 128 KiB shard.
    JavaVm Vm(parallelVmConfig(Pc));
    try {
      runParallelWorkload(Vm, nullptr, Pc);
      FAIL() << "undersized shard must raise VmError (jobs=" << Jobs << ")";
    } catch (const VmError &E) {
      EXPECT_EQ(E.Kind, VmErrorKind::OutOfMemory);
      EXPECT_NE(E.Shard, VmError::kNoShard);
      EXPECT_NE(std::string(E.what()).find("safepoint GC freed nothing"),
                std::string::npos);
    }
  }
}

TEST(Executor, AttachModeProfilingFromWorkers) {
  ParallelConfig Pc = smallConfig(4);
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start(); // Attach before any simulated thread exists.
  ParallelOutcome Out = runParallelWorkload(Vm, &Prof, Pc);
  Prof.stop();

  EXPECT_GT(Out.Steps, 0u);
  EXPECT_GT(Prof.samplesHandled(), 0u);
  EXPECT_GT(Prof.allocationsTracked(), 0u);
  EXPECT_EQ(Prof.profiles().size(), Pc.SimThreads);
  // The sharded index served concurrent inserts/lookups/erases.
  EXPECT_EQ(Prof.index().numShards(), Pc.SimThreads);
  EXPECT_GT(Prof.index().inserts(), 0u);
  EXPECT_GT(Prof.index().erases(), 0u);
  // GC moves flowed through the relocation batch at the safepoint.
  EXPECT_GT(Out.Safepoints, 0u);
  MergedProfile P = Prof.analyze();
  EXPECT_EQ(P.ThreadsMerged, Pc.SimThreads);
  EXPECT_FALSE(renderObjectCentric(P, Vm.methods()).empty());
}

// multianewarray in executor mode is GC-atomic: the whole multi-level
// footprint is preflighted against the shard, so a safepoint park happens
// *before* any inner array commits (no double-published events) and the
// workload still completes identically for any jobs value.
TEST(Executor, MultiArrayAllocationIsGcAtomic) {
  auto Run = [](unsigned Jobs) {
    VmConfig Vc;
    Vc.HeapShards = 2;
    Vc.HeapBytes = 2 * (96 << 10); // 96 KiB per shard: GCs guaranteed.
    JavaVm Vm(Vc);
    // Pre-register the nested ref-array type: registries freeze during
    // run(), so lazy creation inside multianewarray would assert.
    Vm.types().refArrayType("long[]");

    // Main.run(iters): for (i = 0; i < iters; i++) new long[8][32];
    BytecodeProgram P;
    {
      MethodBuilder B("Main", "run", /*NumArgs=*/1, /*NumLocals=*/2);
      B.iconst(0).istore(1);
      Label Loop = B.newLabel(), End = B.newLabel();
      B.bind(Loop);
      B.iload(1).iload(0).ifICmp(Opcode::IfICmpGe, End);
      B.iconst(8).iconst(32);
      B.multiANewArray(Vm.types().longArray(), 2);
      B.pop();
      B.iload(1).iconst(1).iadd().istore(1);
      B.jmp(Loop);
      B.bind(End);
      B.ret();
      ClassFile C;
      C.Name = "Main";
      C.Methods.push_back(B.build());
      P.addClass(std::move(C));
    }
    P.load(Vm);

    ExecutorConfig Ec;
    Ec.Jobs = Jobs;
    Ec.QuantumSteps = 512;
    Executor Ex(Vm, Ec);
    for (unsigned I = 0; I < 2; ++I)
      Ex.addThread(P, "Main.run", {Value::fromInt(200)},
                   "m" + std::to_string(I));
    Ex.run();
    return std::make_tuple(Ex.totalSteps(), Ex.safepoints(),
                           Vm.gcTotals().Collections, Vm.totalCycles());
  };
  auto A = Run(1);
  auto B = Run(2);
  EXPECT_GT(std::get<0>(A), 0u);
  EXPECT_GT(std::get<1>(A), 0u); // Parks happened mid-loop.
  EXPECT_EQ(A, B);               // ...identically for any jobs value.
}

TEST(Executor, InstrumentedBytecodeAgentAcrossInterpreters) {
  ParallelConfig Pc = smallConfig(2);
  Pc.Instrumented = true;
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  ParallelOutcome Out = runParallelWorkload(Vm, &Prof, Pc);
  Prof.stop();
  EXPECT_GT(Out.Steps, 0u);
  // The ASM-style hooks (not VM events) delivered the callbacks.
  EXPECT_GT(Prof.allocationCallbacks(), 0u);
  EXPECT_GT(Prof.allocationsTracked(), 0u);
  EXPECT_EQ(Vm.jvmti().allocationCallbacksDelivered(), 0u);
}

// Executor flavour of the zero-lock guarantee: once the hot arrays are
// tracked (setup phase), a GC-free parallel run delivers and resolves
// every sample — including cross-shard neighbour sweeps — without a
// single index lock acquisition.
TEST(Executor, SteadyStateSamplePathAcquiresNoIndexLocks) {
  ParallelConfig Pc;
  Pc.SimThreads = 2;
  Pc.Jobs = 2;
  Pc.QuantumSteps = 4096;
  Pc.Iters = 40;
  Pc.Nlen = 64;                     // 512 B churn arrays: untracked.
  Pc.HotElems = 16384;              // 128 KiB hot arrays: tracked.
  Pc.HeapBytesPerThread = 8 << 20;  // Roomy shards: no safepoint GCs.
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerfConfig Agent = parallelAgentConfig(Pc);
  Agent.MinObjectSize = 16 << 10; // Only the setup-phase arrays qualify.
  DjxPerf Prof(Vm, Agent);
  ASSERT_TRUE(Prof.batchedResolutionActive());
  Prof.start();

  // Setup phase (the numaRemote shape): one thread allocates each
  // worker's hot array into that worker's shard; workers then sweep
  // their *neighbour's* array, so every lookup crosses shards.
  BytecodeProgram Program = buildNumaWorkerProgram(Vm.types());
  Program.load(Vm);
  TypeId LongArr = Vm.types().longArray();
  MethodId AllocM =
      Vm.methods().getOrRegister("Steady", "allocateHot", {{0, 1}});
  RootScope Roots(Vm);
  std::vector<ObjectRef *> Hot(Pc.SimThreads);
  JavaThread &Setup = Vm.startThread("steady-setup", 0);
  for (unsigned I = 0; I < Pc.SimThreads; ++I) {
    Setup.setHeapShard(I);
    FrameScope F(Setup, AllocM, I);
    Hot[I] = &Roots.add();
    *Hot[I] = Vm.allocateArray(Setup, LongArr, Pc.HotElems);
  }
  Setup.setHeapShard(0);
  Vm.endThread(Setup);

  ExecutorConfig Ec;
  Ec.Jobs = Pc.Jobs;
  Ec.QuantumSteps = Pc.QuantumSteps;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < Pc.SimThreads; ++I)
    Ex.addThread(Program, "Main.run",
                 {Value::fromInt(Pc.Iters), Value::fromInt(Pc.Nlen),
                  Value::fromRef(*Hot[(I + 1) % Pc.SimThreads]),
                  Value::fromInt(Pc.HotElems)},
                 "steady-" + std::to_string(I));

  uint64_t Locks = Prof.index().lockAcquisitions();
  uint64_t Samples = Prof.samplesHandled();
  Ex.run();
  ASSERT_EQ(Ex.safepoints(), 0u) << "test premise: a GC-free steady run";
  EXPECT_GT(Prof.samplesHandled(), Samples);
  EXPECT_EQ(Prof.index().lockAcquisitions(), Locks)
      << "sample resolution must run lock-free in steady state";
  Prof.stop();
  for (size_t I = 0; I < Ex.numTasks(); ++I)
    Vm.endThread(Ex.thread(I));
}

TEST(Executor, ProfiledOutcomeInvariantAcrossJobs) {
  auto RunProfiled = [](unsigned Jobs) {
    ParallelConfig Pc = smallConfig(Jobs);
    JavaVm Vm(parallelVmConfig(Pc));
    DjxPerf Prof(Vm, parallelAgentConfig(Pc));
    Prof.start();
    runParallelWorkload(Vm, &Prof, Pc);
    Prof.stop();
    MergedProfile P = Prof.analyze();
    return std::make_tuple(renderObjectCentric(P, Vm.methods()),
                           Prof.samplesHandled(), Prof.allocationsTracked(),
                           Prof.index().inserts(), Vm.totalCycles());
  };
  auto A = RunProfiled(1);
  auto B = RunProfiled(4);
  EXPECT_EQ(std::get<0>(A), std::get<0>(B));
  EXPECT_EQ(std::get<1>(A), std::get<1>(B));
  EXPECT_EQ(std::get<2>(A), std::get<2>(B));
  EXPECT_EQ(std::get<3>(A), std::get<3>(B));
  EXPECT_EQ(std::get<4>(A), std::get<4>(B));
}

} // namespace
