//===- sim_test.cpp - Unit tests for src/sim --------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "sim/MemoryHierarchy.h"
#include "sim/NumaTopology.h"
#include "sim/Tlb.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(sim_test, 90.0, 66.0,
    "src/sim/Cache.cpp",
    "src/sim/Cache.h",
    "src/sim/MemoryHierarchy.cpp",
    "src/sim/MemoryHierarchy.h",
    "src/sim/Tlb.cpp",
    "src/sim/Tlb.h");

// --- Cache -------------------------------------------------------------------

TEST(Cache, MissThenHit) {
  Cache C(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(63)); // Same line.
  EXPECT_FALSE(C.access(64)); // Next line.
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way, 8 sets (1024/64/2). Lines 0, 8, 16 map to set 0.
  Cache C(CacheConfig{1024, 64, 2});
  uint64_t A = 0, B = 8 * 64, D = 16 * 64;
  C.access(A);
  C.access(B);
  C.access(A);    // A is MRU.
  C.access(D);    // Evicts B (LRU).
  EXPECT_TRUE(C.access(A));
  EXPECT_FALSE(C.access(B));
  EXPECT_EQ(C.evictions(), 2u); // D evicted B; B refill evicted someone.
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  Cache C(CacheConfig{4096, 64, 4}); // 16 sets, 4 ways.
  // Four lines in the same set must all be resident.
  for (int I = 0; I < 4; ++I)
    C.access(static_cast<uint64_t>(I) * 16 * 64);
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(C.contains(static_cast<uint64_t>(I) * 16 * 64));
}

TEST(Cache, InvalidateAndFlush) {
  Cache C(CacheConfig{1024, 64, 2});
  C.access(0);
  C.access(128);
  C.invalidate(0);
  EXPECT_FALSE(C.contains(0));
  EXPECT_TRUE(C.contains(128));
  C.flush();
  EXPECT_FALSE(C.contains(128));
}

TEST(Cache, SequentialWalkMissesOncePerLine) {
  Cache C(CacheConfig{32 * 1024, 64, 8});
  for (uint64_t Addr = 0; Addr < 16 * 1024; Addr += 8)
    C.access(Addr);
  EXPECT_EQ(C.misses(), 16 * 1024 / 64);
}

/// Capacity property across configurations: touching exactly as many
/// distinct lines as the cache holds keeps all of them resident.
class CacheCapacityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheCapacityTest, WorkingSetAtCapacityStaysResident) {
  auto [SizeKb, Ways] = GetParam();
  CacheConfig Cfg{static_cast<uint64_t>(SizeKb) * 1024, 64,
                  static_cast<uint32_t>(Ways)};
  Cache C(Cfg);
  uint64_t Lines = Cfg.SizeBytes / Cfg.LineBytes;
  for (uint64_t I = 0; I < Lines; ++I)
    C.access(I * 64);
  for (uint64_t I = 0; I < Lines; ++I)
    EXPECT_TRUE(C.contains(I * 64)) << "line " << I;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheCapacityTest,
                         ::testing::Combine(::testing::Values(4, 32, 256),
                                            ::testing::Values(1, 2, 8)));

// --- TLB ----------------------------------------------------------------------

TEST(Tlb, HitOnSamePage) {
  Tlb T(TlbConfig{4, 4096});
  EXPECT_FALSE(T.access(0));
  EXPECT_TRUE(T.access(4095));
  EXPECT_FALSE(T.access(4096));
  EXPECT_EQ(T.misses(), 2u);
}

TEST(Tlb, LruEvictionAtCapacity) {
  Tlb T(TlbConfig{2, 4096});
  T.access(0 * 4096);
  T.access(1 * 4096);
  T.access(0 * 4096);      // Page 0 MRU.
  T.access(2 * 4096);      // Evicts page 1.
  EXPECT_TRUE(T.access(0 * 4096));
  EXPECT_FALSE(T.access(1 * 4096));
}

TEST(Tlb, FlushDropsAll) {
  Tlb T(TlbConfig{8, 4096});
  T.access(0);
  T.flush();
  EXPECT_FALSE(T.access(0));
}

// --- NumaTopology ---------------------------------------------------------------

TEST(Numa, CpuToNodeMapping) {
  NumaTopology N(NumaConfig{2, 12, 4096});
  EXPECT_EQ(N.numCpus(), 24u);
  EXPECT_EQ(N.nodeOfCpu(0), 0);
  EXPECT_EQ(N.nodeOfCpu(11), 0);
  EXPECT_EQ(N.nodeOfCpu(12), 1);
  EXPECT_EQ(N.nodeOfCpu(23), 1);
}

TEST(Numa, FirstTouchPlacesOnToucherNode) {
  NumaTopology N(NumaConfig{2, 12, 4096});
  EXPECT_EQ(N.nodeOfAddr(0x5000), kInvalidNode);
  EXPECT_EQ(N.touch(0x5000, 15), 1); // CPU 15 is on node 1.
  EXPECT_EQ(N.nodeOfAddr(0x5000), 1);
  // Second toucher does not move the page.
  EXPECT_EQ(N.touch(0x5800, 0), 1); // Same page.
  EXPECT_EQ(N.nodeOfAddr(0x5000), 1);
}

TEST(Numa, MovePagesQueryAndMigrate) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.touch(0x1000, 0);
  EXPECT_TRUE(N.movePage(0x1000, 1));
  EXPECT_EQ(N.nodeOfAddr(0x1000), 1);
  EXPECT_FALSE(N.movePage(0x1000, 5)); // No such node.
  EXPECT_FALSE(N.movePage(0x1000, -1));
}

TEST(Numa, InterleaveRangeRoundRobins) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.interleaveRange(0, 8 * 4096);
  int Node0 = 0, Node1 = 0;
  for (int P = 0; P < 8; ++P) {
    NumaNodeId Id = N.nodeOfAddr(static_cast<uint64_t>(P) * 4096);
    ASSERT_NE(Id, kInvalidNode);
    (Id == 0 ? Node0 : Node1)++;
  }
  EXPECT_EQ(Node0, 4);
  EXPECT_EQ(Node1, 4);
}

TEST(Numa, InterleaveDefeatsFirstTouch) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.interleaveRange(0, 2 * 4096);
  NumaNodeId Before = N.nodeOfAddr(4096);
  N.touch(4096, 0); // First touch must not re-place.
  EXPECT_EQ(N.nodeOfAddr(4096), Before);
}

TEST(Numa, BindAndReleaseRange) {
  NumaTopology N(NumaConfig{2, 4, 4096});
  N.bindRange(0, 4 * 4096, 1);
  EXPECT_EQ(N.nodeOfAddr(3 * 4096), 1);
  N.releaseRange(0, 4 * 4096);
  EXPECT_EQ(N.nodeOfAddr(0), kInvalidNode);
  EXPECT_EQ(N.numPlacedPages(), 0u);
}

// --- MemoryHierarchy -------------------------------------------------------------

MachineConfig tinyMachine() {
  MachineConfig M;
  M.L1 = CacheConfig{1024, 64, 2};
  M.L2 = CacheConfig{4096, 64, 4};
  M.L3 = CacheConfig{16384, 64, 8};
  M.Dtlb = TlbConfig{4, 4096};
  M.Numa = NumaConfig{2, 2, 4096};
  return M;
}

TEST(MemoryHierarchy, ColdAccessMissesEverywhere) {
  MemoryHierarchy M(tinyMachine());
  AccessResult R = M.accessMemory(0, 0x10000);
  EXPECT_TRUE(R.L1Miss);
  EXPECT_TRUE(R.L2Miss);
  EXPECT_TRUE(R.L3Miss);
  EXPECT_TRUE(R.TlbMiss);
  EXPECT_FALSE(R.RemoteAccess); // First touch = local.
  EXPECT_EQ(R.HomeNode, 0);
  LatencyModel Lat;
  EXPECT_EQ(R.LatencyCycles, Lat.TlbMissPenalty + Lat.LocalDram);
}

TEST(MemoryHierarchy, WarmAccessHitsL1) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0x10000);
  AccessResult R = M.accessMemory(0, 0x10008);
  EXPECT_FALSE(R.L1Miss);
  EXPECT_FALSE(R.TlbMiss);
  LatencyModel Lat;
  EXPECT_EQ(R.LatencyCycles, Lat.L1Hit);
}

TEST(MemoryHierarchy, PrivateL1PerCpu) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0x10000);
  // Another CPU on the same node: misses L1/L2, hits shared L3.
  AccessResult R = M.accessMemory(1, 0x10000);
  EXPECT_TRUE(R.L1Miss);
  EXPECT_TRUE(R.L2Miss);
  EXPECT_FALSE(R.L3Miss);
}

TEST(MemoryHierarchy, RemoteAccessDetectedAcrossNodes) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0x20000); // CPU0 (node0) first-touches.
  // CPU on node 1 misses its own L3 and reaches node0's DRAM.
  AccessResult R = M.accessMemory(2, 0x20000);
  EXPECT_TRUE(R.L3Miss);
  EXPECT_TRUE(R.RemoteAccess);
  EXPECT_EQ(R.HomeNode, 0);
}

TEST(MemoryHierarchy, RemoteCostsMoreThanLocal) {
  MachineConfig Cfg = tinyMachine();
  Cfg.Latency.DramContentionMaxPenalty = 0; // Isolate base latencies.
  MemoryHierarchy MLocal(Cfg), MRemote(Cfg);
  uint32_t Local = MLocal.accessMemory(0, 0x0).LatencyCycles;
  MRemote.numa().bindRange(0x0, 64, 1);
  uint32_t Remote = MRemote.accessMemory(0, 0x0).LatencyCycles;
  EXPECT_GT(Remote, Local);
  EXPECT_EQ(Remote - Local, Cfg.Latency.RemoteDram - Cfg.Latency.LocalDram);
}

TEST(MemoryHierarchy, ContentionRaisesLatencyForOtherCpus) {
  MachineConfig Cfg = tinyMachine();
  MemoryHierarchy M(Cfg);
  // CPU1 blasts node-0 DRAM (each access a distinct line).
  for (int I = 0; I < 2000; ++I)
    M.accessMemory(1, 0x100000 + static_cast<uint64_t>(I) * 4096);
  // A fresh CPU0 access to node-0 DRAM now pays a contention penalty.
  M.numa().bindRange(0x900000, 64, 0);
  AccessResult R = M.accessMemory(0, 0x900000);
  ASSERT_TRUE(R.L3Miss);
  EXPECT_GT(R.LatencyCycles,
            Cfg.Latency.LocalDram + Cfg.Latency.TlbMissPenalty);
}

TEST(MemoryHierarchy, NoSelfContention) {
  MachineConfig Cfg = tinyMachine();
  MemoryHierarchy M(Cfg);
  // One CPU alone never pays contention, no matter how much it streams.
  uint32_t First = 0, Last = 0;
  for (int I = 0; I < 2000; ++I) {
    AccessResult R =
        M.accessMemory(0, 0x100000 + static_cast<uint64_t>(I) * 4096);
    if (I == 0)
      First = R.LatencyCycles;
    Last = R.LatencyCycles;
  }
  EXPECT_EQ(First, Last);
}

TEST(MemoryHierarchy, StatsAccumulate) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0);
  M.accessMemory(0, 0);
  const HierarchyStats &S = M.stats();
  EXPECT_EQ(S.Accesses, 2u);
  EXPECT_EQ(S.L1Misses, 1u);
  EXPECT_GT(S.TotalLatency, 0u);
  M.resetStats();
  EXPECT_EQ(M.stats().Accesses, 0u);
}

TEST(MemoryHierarchy, FlushKeepingL3) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0x40000);
  M.flushCaches(/*IncludeL3=*/false);
  AccessResult R = M.accessMemory(0, 0x40000);
  EXPECT_TRUE(R.L1Miss);
  EXPECT_TRUE(R.L2Miss);
  EXPECT_FALSE(R.L3Miss) << "L3 should stay warm";
  M.flushCaches(/*IncludeL3=*/true);
  EXPECT_TRUE(M.accessMemory(0, 0x40000).L3Miss);
}

TEST(MemoryHierarchy, InvalidateLineEverywhere) {
  MemoryHierarchy M(tinyMachine());
  M.accessMemory(0, 0x40000);
  M.invalidateLine(0x40000);
  AccessResult R = M.accessMemory(0, 0x40000);
  EXPECT_TRUE(R.L1Miss && R.L2Miss && R.L3Miss);
}

} // namespace
