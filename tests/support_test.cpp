//===- support_test.cpp - Unit tests for src/support -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/IntervalSplayTree.h"
#include "support/Random.h"
#include "support/SpinLock.h"
#include "support/Statistics.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(support_test, 86.0, 66.0,
    "src/support/Bits.h",
    "src/support/IntervalSplayTree.h",
    "src/support/Random.h",
    "src/support/SpinLock.h",
    "src/support/Statistics.cpp",
    "src/support/Statistics.h",
    "src/support/TextTable.cpp",
    "src/support/TextTable.h",
    "src/support/ThreadAnnotations.h");

// --- IntervalSplayTree ------------------------------------------------------

TEST(IntervalSplayTree, EmptyLookupMisses) {
  IntervalSplayTree<int> T;
  EXPECT_TRUE(T.empty());
  EXPECT_FALSE(T.lookup(0).has_value());
  EXPECT_FALSE(T.lookup(42).has_value());
  EXPECT_EQ(T.size(), 0u);
}

TEST(IntervalSplayTree, SingleIntervalHitBounds) {
  IntervalSplayTree<int> T;
  T.insert(100, 50, 7);
  EXPECT_FALSE(T.lookup(99).has_value());
  ASSERT_TRUE(T.lookup(100).has_value());
  EXPECT_EQ(T.lookup(100)->Value, 7);
  EXPECT_EQ(T.lookup(149)->Value, 7);
  EXPECT_FALSE(T.lookup(150).has_value());
}

TEST(IntervalSplayTree, InteriorPointResolvesToEnclosing) {
  IntervalSplayTree<int> T;
  T.insert(0x1000, 0x100, 1);
  T.insert(0x2000, 0x100, 2);
  auto E = T.lookup(0x2080);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Start, 0x2000u);
  EXPECT_EQ(E->Value, 2);
}

TEST(IntervalSplayTree, GapBetweenIntervalsMisses) {
  IntervalSplayTree<int> T;
  T.insert(0, 10, 1);
  T.insert(100, 10, 2);
  EXPECT_FALSE(T.lookup(50).has_value());
  EXPECT_FALSE(T.lookup(10).has_value());
  EXPECT_FALSE(T.lookup(99).has_value());
}

TEST(IntervalSplayTree, RemoveAt) {
  IntervalSplayTree<int> T;
  T.insert(10, 10, 1);
  T.insert(30, 10, 2);
  EXPECT_TRUE(T.removeAt(10));
  EXPECT_FALSE(T.lookup(15).has_value());
  EXPECT_TRUE(T.lookup(35).has_value());
  EXPECT_FALSE(T.removeAt(10));
  EXPECT_FALSE(T.removeAt(35)); // Not a start address.
  EXPECT_EQ(T.size(), 1u);
}

TEST(IntervalSplayTree, RemoveContaining) {
  IntervalSplayTree<int> T;
  T.insert(10, 10, 1);
  auto E = T.removeContaining(15);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Value, 1);
  EXPECT_TRUE(T.empty());
  EXPECT_FALSE(T.removeContaining(15).has_value());
}

TEST(IntervalSplayTree, InsertEvictsOverlappingStaleIntervals) {
  IntervalSplayTree<int> T;
  T.insert(0, 64, 1);
  T.insert(64, 64, 2);
  T.insert(128, 64, 3);
  // A new allocation spanning the last two.
  unsigned Evicted = T.insert(70, 60, 9);
  EXPECT_EQ(Evicted, 2u);
  EXPECT_EQ(T.lookup(75)->Value, 9);
  EXPECT_EQ(T.lookup(129)->Value, 9);
  EXPECT_EQ(T.lookup(20)->Value, 1);
  EXPECT_FALSE(T.lookup(140).has_value());
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalSplayTree, InsertExactReplacement) {
  IntervalSplayTree<int> T;
  T.insert(100, 32, 1);
  unsigned Evicted = T.insert(100, 32, 2);
  EXPECT_EQ(Evicted, 1u);
  EXPECT_EQ(T.lookup(100)->Value, 2);
  EXPECT_EQ(T.size(), 1u);
}

TEST(IntervalSplayTree, RelocateMovesValue) {
  IntervalSplayTree<int> T;
  T.insert(100, 64, 5);
  EXPECT_TRUE(T.relocate(100, 500, 64));
  EXPECT_FALSE(T.lookup(100).has_value());
  EXPECT_EQ(T.lookup(530)->Value, 5);
}

TEST(IntervalSplayTree, RelocateCanResize) {
  IntervalSplayTree<int> T;
  T.insert(100, 64, 5);
  EXPECT_TRUE(T.relocate(100, 100, 32));
  EXPECT_TRUE(T.lookup(131).has_value());
  EXPECT_FALSE(T.lookup(132).has_value());
}

TEST(IntervalSplayTree, RelocateMissingReturnsFalse) {
  IntervalSplayTree<int> T;
  T.insert(100, 64, 5);
  EXPECT_FALSE(T.relocate(101, 500, 64));
  EXPECT_EQ(T.size(), 1u);
}

TEST(IntervalSplayTree, RemoveOverlappingRange) {
  IntervalSplayTree<int> T;
  for (uint64_t I = 0; I < 10; ++I)
    T.insert(I * 100, 50, static_cast<int>(I));
  EXPECT_EQ(T.removeOverlapping(149, 351), 3u); // 100, 200, 300.
  EXPECT_EQ(T.size(), 7u);
  EXPECT_FALSE(T.lookup(120).has_value());
  EXPECT_TRUE(T.lookup(20).has_value());
  EXPECT_TRUE(T.lookup(420).has_value());
}

TEST(IntervalSplayTree, EntriesSortedAndInvariantsHold) {
  IntervalSplayTree<int> T;
  uint64_t Starts[] = {500, 100, 900, 300, 700};
  for (uint64_t S : Starts)
    T.insert(S, 50, 1);
  auto Entries = T.entries();
  ASSERT_EQ(Entries.size(), 5u);
  for (size_t I = 1; I < Entries.size(); ++I)
    EXPECT_LT(Entries[I - 1].Start, Entries[I].Start);
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalSplayTree, PeekDoesNotRestructure) {
  IntervalSplayTree<int> T;
  T.insert(0, 10, 1);
  T.insert(100, 10, 2);
  const auto &CT = T;
  EXPECT_EQ(CT.peek(5)->Value, 1);
  EXPECT_EQ(CT.peek(105)->Value, 2);
  EXPECT_FALSE(CT.peek(50).has_value());
}

TEST(IntervalSplayTree, ClearResets) {
  IntervalSplayTree<int> T;
  for (uint64_t I = 0; I < 100; ++I)
    T.insert(I * 64, 64, 0);
  EXPECT_GT(T.memoryFootprint(), 0u);
  T.clear();
  EXPECT_TRUE(T.empty());
  EXPECT_FALSE(T.lookup(0).has_value());
}

TEST(IntervalSplayTree, MoveConstruction) {
  IntervalSplayTree<int> T;
  T.insert(10, 10, 1);
  IntervalSplayTree<int> U(std::move(T));
  EXPECT_EQ(U.lookup(12)->Value, 1);
  EXPECT_EQ(U.size(), 1u);
}

/// Property check against a reference std::map model, across sizes.
class SplayTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SplayTreeModelTest, MatchesReferenceModel) {
  int N = GetParam();
  Random Rng(1234 + N);
  IntervalSplayTree<uint64_t> T;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> Model; // start->(end,v)

  auto ModelLookup = [&](uint64_t Addr)
      -> std::optional<std::pair<uint64_t, uint64_t>> {
    auto It = Model.upper_bound(Addr);
    if (It == Model.begin())
      return std::nullopt;
    --It;
    if (Addr < It->second.first)
      return std::make_pair(It->first, It->second.second);
    return std::nullopt;
  };
  auto ModelEraseOverlap = [&](uint64_t S, uint64_t E) {
    for (auto It = Model.begin(); It != Model.end();) {
      if (It->first < E && It->second.first > S)
        It = Model.erase(It);
      else
        ++It;
    }
  };

  for (int Op = 0; Op < N; ++Op) {
    uint64_t R = Rng.nextBelow(100);
    uint64_t Addr = Rng.nextBelow(1 << 14);
    if (R < 50) {
      uint64_t Size = 1 + Rng.nextBelow(256);
      ModelEraseOverlap(Addr, Addr + Size);
      Model[Addr] = {Addr + Size, static_cast<uint64_t>(Op)};
      T.insert(Addr, Size, static_cast<uint64_t>(Op));
    } else if (R < 75) {
      auto Want = ModelLookup(Addr);
      auto Got = T.lookup(Addr);
      ASSERT_EQ(Want.has_value(), Got.has_value()) << "addr " << Addr;
      if (Want) {
        EXPECT_EQ(Got->Start, Want->first);
        EXPECT_EQ(Got->Value, Want->second);
      }
    } else if (R < 90) {
      auto Want = ModelLookup(Addr);
      bool Removed = T.removeAt(Addr);
      bool ModelHasStart = Want && Want->first == Addr;
      EXPECT_EQ(Removed, ModelHasStart);
      if (ModelHasStart)
        Model.erase(Addr);
    } else {
      // Relocation of a random existing interval.
      if (!Model.empty()) {
        auto It = Model.begin();
        std::advance(It, Rng.nextBelow(Model.size()));
        uint64_t Old = It->first;
        uint64_t Size = It->second.first - It->first;
        uint64_t Val = It->second.second;
        uint64_t NewStart = Rng.nextBelow(1 << 14);
        Model.erase(It);
        ModelEraseOverlap(NewStart, NewStart + Size);
        Model[NewStart] = {NewStart + Size, Val};
        EXPECT_TRUE(T.relocate(Old, NewStart, Size));
      }
    }
    ASSERT_EQ(T.size(), Model.size());
  }
  EXPECT_TRUE(T.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplayTreeModelTest,
                         ::testing::Values(50, 200, 1000, 5000));

// --- SpinLock ---------------------------------------------------------------

TEST(SpinLock, LockUnlockCountsAcquisitions) {
  SpinLock L;
  L.lock();
  L.unlock();
  {
    SpinLockGuard G(L);
  }
  EXPECT_EQ(L.acquisitions(), 2u);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock L;
  L.lock();
  EXPECT_FALSE(L.tryLock());
  L.unlock();
  EXPECT_TRUE(L.tryLock());
  L.unlock();
}

TEST(SpinLock, MutualExclusionUnderRealThreads) {
  SpinLock L;
  uint64_t Counter = 0;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> Threads;
  for (int I = 0; I < kThreads; ++I)
    Threads.emplace_back([&]() {
      for (int K = 0; K < kIters; ++K) {
        SpinLockGuard G(L);
        ++Counter;
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Counter, static_cast<uint64_t>(kThreads) * kIters);
}

// --- Random ------------------------------------------------------------------

TEST(Random, DeterministicForSeed) {
  Random A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Random, NextBelowInRange) {
  Random R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Random, NextInRangeInclusive) {
  Random R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.nextInRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, DoubleInUnitInterval) {
  Random R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BernoulliRoughlyCalibrated) {
  Random R(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}

// --- Statistics --------------------------------------------------------------

TEST(Statistics, EmptySample) {
  SampleStats S = summarize({});
  EXPECT_EQ(S.Count, 0u);
  EXPECT_DOUBLE_EQ(S.Mean, 0.0);
}

TEST(Statistics, SingleValue) {
  SampleStats S = summarize({5.0});
  EXPECT_DOUBLE_EQ(S.Mean, 5.0);
  EXPECT_DOUBLE_EQ(S.StdDev, 0.0);
  EXPECT_DOUBLE_EQ(S.Ci95, 0.0);
}

TEST(Statistics, MeanStdDevCi) {
  SampleStats S = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(S.Mean, 5.0);
  EXPECT_NEAR(S.StdDev, 2.138, 0.001);
  EXPECT_NEAR(S.Ci95, 1.96 * 2.138 / std::sqrt(8.0), 0.01);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 9.0);
}

TEST(Statistics, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Statistics, Median) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

// --- TextTable ----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string S = T.render();
  // Split into lines and check the second column starts at one offset.
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Nl = S.find('\n', Pos);
    Lines.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  ASSERT_EQ(Lines.size(), 4u); // Header, separator, two rows.
  size_t Col = Lines[0].find("value");
  EXPECT_EQ(Lines[2].find('1'), Col);
  EXPECT_EQ(Lines[3].find("22"), Col);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::fmtPlusMinus(1.5, 0.25, 2), "1.50 +- 0.25");
  EXPECT_EQ(TextTable::fmtPercent(0.215, 1), "21.5%");
}

TEST(TextTable, SeparatorRows) {
  TextTable T({"a"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y"});
  std::string S = T.render();
  EXPECT_EQ(T.numRows(), 3u);
  EXPECT_NE(S.find("---"), std::string::npos);
}

} // namespace
