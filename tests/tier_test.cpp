//===- tier_test.cpp - Tiered execution: golden parity + trace compiler ----===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The super tier's contract is absolute: hot-trace superinstructions are
/// a *wall-clock* optimisation and may not move one observable byte.
/// These tests pin that contract from every angle the repo knows how to
/// disturb it — serial and multi-threaded golden diffs against the interp
/// tier, --jobs sweeps, NUMA placement policies, fuzzed schedules, fault
/// campaigns, quantum pause trajectories, and mid-trace GcRequest
/// re-execution — plus unit tests for the trace compiler's fusion and
/// shape analysis, the per-interpreter trace cache's state machine, and
/// deopt-at-safepoint invalidation.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"
#include "bytecode/MethodBuilder.h"
#include "bytecode/TraceCompiler.h"
#include "core/DjxPerf.h"
#include "core/Report.h"
#include "interp/Interpreter.h"
#include "runtime/Executor.h"
#include "support/FaultInjector.h"
#include "support/VmError.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(tier_test, 93.0, 70.0,
    "src/bytecode/TraceCompiler.cpp",
    "src/bytecode/TraceCompiler.h",
    "src/interp/TraceCache.cpp",
    "src/interp/TraceCache.h");

TierConfig superTier(uint32_t HotThreshold = 4) {
  TierConfig Cfg;
  Cfg.Tier = ExecTier::Super;
  Cfg.HotThreshold = HotThreshold;
  return Cfg;
}

/// Builds a one-method program shaped like the catalog's hot loops:
///   for (i = 0; i < n; ++i) a[i] = i;   over a fresh float[n]
/// — the iload/if_icmpge head, pastore body, and iinc idiom the fused
/// superinstructions target. Locals: 0 = n, 1 = a, 2 = i.
BytecodeProgram sweepProgram(TypeRegistry &Types, int64_t N) {
  MethodBuilder B("T", "main", 0, 4);
  B.iconst(N).istore(0);
  B.iload(0).newArray(Types.floatArray()).astore(1);
  B.iconst(0).istore(2);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(2).iload(0).ifICmp(Opcode::IfICmpGe, End);
  B.aload(1).iload(2).iload(2).paStore();
  B.iload(2).iconst(1).iadd().istore(2);
  B.jmp(Head);
  B.bind(End);
  B.iload(2).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  return P;
}

/// Pc of the loop head in sweepProgram's method (first instruction after
/// the two-instruction init prologues: 2 + 3 + 2 = 7).
constexpr uint32_t kSweepLoopHead = 7;

/// Allocation-churn loop: 2000 iterations each allocating a fresh
/// float[64] that dies immediately. On a tiny heap every few iterations
/// fault into a GC; on a large heap none do. Locals: 0 = i, 1 = scratch.
BytecodeProgram churnProgram(TypeRegistry &Types) {
  MethodBuilder B("T", "main", 0, 4);
  B.iconst(0).istore(0);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(0).iconst(2000).ifICmp(Opcode::IfICmpGe, End);
  B.iconst(64).newArray(Types.floatArray()).astore(1);
  B.iload(0).iconst(1).iadd().istore(0);
  B.jmp(Head);
  B.bind(End);
  B.iconst(0).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  return P;
}

// --- Trace compiler ------------------------------------------------------

TEST(TraceCompiler, FusesHotLoopIdioms) {
  JavaVm Vm;
  BytecodeProgram P = sweepProgram(Vm.types(), 64);
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];

  auto T = compileTrace(M, kSweepLoopHead, superTier());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->EntryPc, kSweepLoopHead);

  std::vector<SuperOp> Kinds;
  for (const TraceOp &O : T->Ops)
    Kinds.push_back(O.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<SuperOp>{SuperOp::CmpBranchLL, SuperOp::PAStoreLLL,
                                  SuperOp::IncLocal, SuperOp::GotoExit}));
  // The whole loop body fuses into 4 superops retiring 12 instructions.
  EXPECT_EQ(T->NumSteps, 12u);
  // The backward goto exits to the loop head; the side exit targets the
  // instruction after the loop.
  EXPECT_EQ(T->Ops.back().A, kSweepLoopHead);
  EXPECT_EQ(T->Ops.front().Src, Opcode::IfICmpGe);
  // Step accounting invariants the executing tier's budget checks rely
  // on: NumSteps is the sum of per-op charges and StepsAfter is the
  // suffix sum that follows each op.
  uint32_t Sum = 0, After = T->NumSteps;
  for (const TraceOp &O : T->Ops) {
    Sum += O.NumSteps;
    After -= O.NumSteps;
    EXPECT_EQ(O.StepsAfter, After);
  }
  EXPECT_EQ(Sum, T->NumSteps);
  // The loop body never holds operands across iterations.
  EXPECT_EQ(T->MinStackDepth, 0u);
  EXPECT_GT(T->MaxStackGrowth, 0u);
}

TEST(TraceCompiler, TierNamesRoundTrip) {
  EXPECT_STREQ(execTierName(ExecTier::Interp), "interp");
  EXPECT_STREQ(execTierName(ExecTier::Super), "super");
  ExecTier T = ExecTier::Interp;
  EXPECT_TRUE(parseExecTier("super", T));
  EXPECT_EQ(T, ExecTier::Super);
  EXPECT_TRUE(parseExecTier("interp", T));
  EXPECT_EQ(T, ExecTier::Interp);
  T = ExecTier::Super;
  EXPECT_FALSE(parseExecTier("jit", T));
  EXPECT_EQ(T, ExecTier::Super); // Unknown names leave the output alone.
}

/// Builds a method exercising the base (non-fused) encodings: stack
/// shuffles, negation, a decrementing inc_local, and a 2-D allocation.
/// Returns ((-(5)) computed via dup/swap shuffling, then counts down).
BytecodeProgram shuffleProgram(TypeRegistry &Types) {
  MethodBuilder B("T", "main", 0, 4);
  B.iconst(3).istore(0);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(0).ifEq(End);
  B.iconst(5).dup().iadd().ineg();   // -(5+5)
  B.iconst(2).swap().pop().pop();    // Shuffle, then discard both.
  B.iconst(2).iconst(3).multiANewArray(Types.intArray(), 2).astore(1);
  B.iload(0).iconst(1).isub().istore(0); // Decrementing inc_local.
  B.jmp(Head);
  B.bind(End);
  B.iload(0).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  return P;
}

TEST(TraceCompiler, BaseEncodingsCoverStackShufflesAndMultiArrays) {
  JavaVm Vm;
  BytecodeProgram P = shuffleProgram(Vm.types());
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];
  // Compile at the loop head (pc 2, after the two-instruction prologue).
  auto T = compileTrace(M, 2, superTier());
  ASSERT_TRUE(T.has_value());
  std::vector<SuperOp> Kinds;
  for (const TraceOp &O : T->Ops)
    Kinds.push_back(O.Kind);
  auto Has = [&](SuperOp K) {
    return std::find(Kinds.begin(), Kinds.end(), K) != Kinds.end();
  };
  EXPECT_TRUE(Has(SuperOp::DupV));
  EXPECT_TRUE(Has(SuperOp::SwapV));
  EXPECT_TRUE(Has(SuperOp::INeg));
  EXPECT_TRUE(Has(SuperOp::PopV));
  EXPECT_TRUE(Has(SuperOp::Alloc));
  EXPECT_TRUE(Has(SuperOp::IncLocal)); // The iload/iconst/isub/istore run.

  // And the program runs identically in both tiers, exercising the
  // executing side of every base encoding above.
  auto Run = [&](ExecTier Tier) {
    JavaVm RunVm;
    BytecodeProgram RunP = shuffleProgram(RunVm.types());
    RunP.load(RunVm);
    JavaThread &Th = RunVm.startThread("shuffle", 0);
    Interpreter I(RunVm, RunP, Th);
    if (Tier == ExecTier::Super)
      I.setTier(superTier(/*HotThreshold=*/1));
    auto R = I.run("T.main");
    uint64_t Cycles = RunVm.totalCycles();
    uint64_t Steps = I.stepsExecuted();
    RunVm.endThread(Th);
    EXPECT_TRUE(R.has_value());
    return std::make_tuple(R->asInt(), Steps, Cycles);
  };
  EXPECT_EQ(Run(ExecTier::Super), Run(ExecTier::Interp));
}

TEST(TraceCache, SiteCountIsBoundsChecked) {
  TraceCache Cache(superTier());
  EXPECT_EQ(Cache.siteCount(0, 0), 0u);   // No method arrays yet.
  (void)Cache.sitesFor(0, 4);
  EXPECT_EQ(Cache.siteCount(0, 9), 0u);   // Pc past the code size.
  EXPECT_EQ(Cache.siteCount(7, 0), 0u);   // Method never touched.
}

TEST(TraceCompiler, RejectsRegionsTooShortToPay) {
  JavaVm Vm;
  MethodBuilder B("T", "main", 0, 2);
  B.iconst(7).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];
  // IRet ends trace formation immediately: a one-instruction region does
  // not pay for trace entry, and the iret pc itself yields zero steps.
  EXPECT_FALSE(compileTrace(M, 0, superTier()).has_value());
  EXPECT_FALSE(compileTrace(M, 1, superTier()).has_value());
}

TEST(TraceCompiler, MaxTraceLengthCapsFormation) {
  JavaVm Vm;
  MethodBuilder B("T", "main", 0, 2);
  for (int I = 0; I < 16; ++I)
    B.iconst(I).pop();
  B.iconst(0).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];

  TierConfig Cfg = superTier();
  Cfg.MaxTraceLength = 8;
  auto T = compileTrace(M, 0, Cfg);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->NumSteps, 8u);
  EXPECT_EQ(T->EndPc, 8u); // Falls through to the flat loop mid-method.
}

TEST(TraceCompiler, ShapeAnalysisTracksEntryDepthAndGrowth) {
  JavaVm Vm;
  MethodBuilder B("T", "main", 0, 2);
  B.iconst(1).iconst(2);
  // Entry pc 2: consumes the two operands already on the stack at entry.
  B.iadd().istore(0);
  B.iconst(3).iconst(4).iconst(5).pop().pop().pop();
  B.iconst(0).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];

  auto T = compileTrace(M, 2, superTier());
  ASSERT_TRUE(T.has_value());
  // iadd pops 2 below the entry depth; the iconst run later grows 3
  // above it (net -2 at that point, peak +1 relative to entry).
  EXPECT_EQ(T->MinStackDepth, 2u);
  EXPECT_EQ(T->MaxStackGrowth, 1u);
}

// --- Disassembler --------------------------------------------------------

TEST(Disassembler, RendersCompiledTraces) {
  JavaVm Vm;
  BytecodeProgram P = sweepProgram(Vm.types(), 64);
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];
  auto T = compileTrace(M, kSweepLoopHead, superTier());
  ASSERT_TRUE(T.has_value());

  std::string Text = disassembleTrace(M, *T);
  EXPECT_NE(Text.find("trace T.main @7"), std::string::npos) << Text;
  EXPECT_NE(Text.find("cmp_branch_ll"), std::string::npos) << Text;
  EXPECT_NE(Text.find("[side exit]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("pa_store_lll"), std::string::npos) << Text;
  EXPECT_NE(Text.find("inc_local"), std::string::npos) << Text;
  EXPECT_NE(Text.find("goto_exit"), std::string::npos) << Text;
}

// --- Trace cache ---------------------------------------------------------

TEST(TraceCache, WarmsCompilesInvalidatesRecompiles) {
  JavaVm Vm;
  BytecodeProgram P = sweepProgram(Vm.types(), 64);
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];

  TraceCache Cache(superTier(/*HotThreshold=*/3));
  TraceCache::Site *Sites = Cache.sitesFor(0, M.Code.size());

  // Two dispatches warm the counter without compiling.
  EXPECT_EQ(Cache.bump(Sites[kSweepLoopHead], M, kSweepLoopHead), nullptr);
  EXPECT_EQ(Cache.bump(Sites[kSweepLoopHead], M, kSweepLoopHead), nullptr);
  EXPECT_EQ(Cache.siteCount(0, kSweepLoopHead), 2u);
  EXPECT_EQ(Sites[kSweepLoopHead].St, TraceCache::Site::Cold);

  // The third crosses the threshold and compiles.
  const CompiledTrace *T =
      Cache.bump(Sites[kSweepLoopHead], M, kSweepLoopHead);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(Sites[kSweepLoopHead].St, TraceCache::Site::Compiled);
  EXPECT_EQ(Cache.stats().Compiles, 1u);

  // Safepoint invalidation frees the trace but keeps the counter
  // saturated, so the next flat visit recompiles immediately.
  Cache.invalidate();
  EXPECT_EQ(Sites[kSweepLoopHead].St, TraceCache::Site::Cold);
  EXPECT_EQ(Cache.stats().Invalidations, 1u);
  EXPECT_EQ(Cache.siteCount(0, kSweepLoopHead),
            Cache.config().HotThreshold);
  ASSERT_NE(Cache.bump(Sites[kSweepLoopHead], M, kSweepLoopHead), nullptr);
  EXPECT_EQ(Cache.stats().Compiles, 2u);
}

TEST(TraceCache, UncompilableSitesGoDead) {
  JavaVm Vm;
  MethodBuilder B("T", "main", 0, 2);
  B.iconst(7).iret();
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  P.load(Vm);
  const BytecodeMethod &M = P.classes()[0].Methods[0];

  TraceCache Cache(superTier(/*HotThreshold=*/1));
  TraceCache::Site *Sites = Cache.sitesFor(0, M.Code.size());
  EXPECT_EQ(Cache.bump(Sites[0], M, 0), nullptr);
  EXPECT_EQ(Sites[0].St, TraceCache::Site::Dead);
  EXPECT_EQ(Cache.stats().DeadSites, 1u);
  EXPECT_EQ(Cache.stats().Compiles, 0u);
}

// --- Golden parity: serial ----------------------------------------------

/// Everything observable from one profiled serial batik run.
struct SerialOutcome {
  std::string ObjectReport;
  std::string CodeReport;
  uint64_t Steps = 0;
  uint64_t TotalCycles = 0;
  uint64_t PeakHeap = 0;
  uint64_t Samples = 0;
  uint64_t AllocCallbacks = 0;
  uint64_t Compiles = 0;

  bool operator==(const SerialOutcome &O) const {
    return ObjectReport == O.ObjectReport && CodeReport == O.CodeReport &&
           Steps == O.Steps && TotalCycles == O.TotalCycles &&
           PeakHeap == O.PeakHeap && Samples == O.Samples &&
           AllocCallbacks == O.AllocCallbacks;
  }
};

SerialOutcome runSerialBatik(ExecTier Tier) {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20; // Small: inline AutoGc collections happen.
  JavaVm Vm(Cfg);
  BytecodeProgram Program = buildBatikProgram(Vm.types());
  Program.load(Vm);
  JavaThread &T = Vm.startThread("tier", 0);
  Interpreter Interp(Vm, Program, T);
  if (Tier == ExecTier::Super)
    Interp.setTier(superTier());
  DjxPerf Prof(Vm);
  Prof.instrument(Program, Interp);
  Prof.start();
  Interp.run("Main.run", {Value::fromInt(400), Value::fromInt(512)});
  Prof.stop();

  SerialOutcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Steps = Interp.stepsExecuted();
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  if (const TraceCache *Cache = Interp.traceCache())
    O.Compiles = Cache->stats().Compiles;
  Vm.endThread(T);
  return O;
}

TEST(TierParity, SerialReportsByteIdenticalAcrossTiers) {
  SerialOutcome Interp = runSerialBatik(ExecTier::Interp);
  SerialOutcome Super = runSerialBatik(ExecTier::Super);
  EXPECT_TRUE(Super == Interp)
      << "--- interp ---\n" << Interp.ObjectReport
      << "\n--- super ---\n" << Super.ObjectReport;
  // Sanity: the super run actually ran traces, not just the flat loop.
  EXPECT_EQ(Interp.Compiles, 0u);
  EXPECT_GT(Super.Compiles, 0u);
  EXPECT_GT(Super.Samples, 0u);
  EXPECT_GT(Super.AllocCallbacks, 0u);
}

// --- Golden parity: multi-threaded --------------------------------------

/// Everything observable from one profiled MT run.
struct MtOutcome {
  std::string ObjectReport;
  std::string CodeReport;
  uint64_t Steps = 0;
  uint64_t Safepoints = 0;
  uint64_t Rounds = 0;
  uint64_t TotalCycles = 0;
  uint64_t PeakHeap = 0;
  uint64_t Samples = 0;
  uint64_t AllocCallbacks = 0;
  uint64_t Collections = 0;
  HierarchyStats Machine;

  bool operator==(const MtOutcome &O) const {
    return ObjectReport == O.ObjectReport && CodeReport == O.CodeReport &&
           Steps == O.Steps && Safepoints == O.Safepoints &&
           Rounds == O.Rounds && TotalCycles == O.TotalCycles &&
           PeakHeap == O.PeakHeap && Samples == O.Samples &&
           AllocCallbacks == O.AllocCallbacks &&
           Collections == O.Collections &&
           Machine.Accesses == O.Machine.Accesses &&
           Machine.L1Misses == O.Machine.L1Misses &&
           Machine.TlbMisses == O.Machine.TlbMisses &&
           Machine.RemoteAccesses == O.Machine.RemoteAccesses &&
           Machine.TotalLatency == O.Machine.TotalLatency;
  }
};

ParallelConfig mtWorkload() {
  ParallelConfig Pc;
  Pc.SimThreads = 4;
  Pc.QuantumSteps = 8192;
  Pc.Iters = 500;
  Pc.Nlen = 256;
  Pc.HotElems = 16384;               // 128 KiB: sweeps miss L1.
  Pc.HeapBytesPerThread = 512 << 10; // Churn forces safepoint GCs.
  return Pc;
}

MtOutcome runMt(ParallelConfig Pc, bool NumaRemote = false) {
  JavaVm Vm(NumaRemote ? numaRemoteVmConfig(Pc) : parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  ParallelOutcome Run = NumaRemote ? runNumaRemoteWorkload(Vm, &Prof, Pc)
                                   : runParallelWorkload(Vm, &Prof, Pc);
  Prof.stop();

  MtOutcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Steps = Run.Steps;
  O.Safepoints = Run.Safepoints;
  O.Rounds = Run.Rounds;
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  O.Collections = Vm.gcTotals().Collections;
  O.Machine = Run.Machine;
  return O;
}

/// The tentpole acceptance test: `--tier super` is byte-identical to
/// `--tier interp` on the parallel workload for every --jobs value, with
/// safepoint GCs (= mid-trace GcRequest unwinds and deopt-at-safepoint
/// invalidation) in play.
TEST(TierParity, MtWorkloadByteIdenticalAcrossTiersAndJobs) {
  ParallelConfig Golden = mtWorkload();
  Golden.Jobs = 1;
  MtOutcome Interp = runMt(Golden);
  // Sanity: safepoint GCs actually interrupted traces.
  EXPECT_GT(Interp.Safepoints, 0u);
  EXPECT_GT(Interp.Collections, 0u);
  EXPECT_GT(Interp.Samples, 0u);

  for (unsigned Jobs : {1u, 2u, 4u}) {
    ParallelConfig Pc = mtWorkload();
    Pc.Jobs = Jobs;
    Pc.Tier = superTier();
    MtOutcome Super = runMt(Pc);
    EXPECT_TRUE(Super == Interp)
        << "jobs=" << Jobs << "\n--- interp ---\n" << Interp.ObjectReport
        << "\n--- super ---\n" << Super.ObjectReport;
  }
}

/// NUMA placement policies change simulated placement, not the schedule;
/// the super tier must reproduce the interp tier under each of them.
TEST(TierParity, NumaWorkloadByteIdenticalAcrossPolicies) {
  for (NumaPolicy Policy :
       {NumaPolicy::FirstTouch, NumaPolicy::Interleave, NumaPolicy::Bind}) {
    ParallelConfig Pc;
    Pc.SimThreads = 4;
    Pc.Jobs = 2;
    Pc.Iters = 150;
    Pc.Nlen = 256;
    Pc.HotElems = 32768; // 256 KiB: above the scaled L3, sweeps hit DRAM.
    Pc.HeapBytesPerThread = 512 << 10;
    Pc.Policy = Policy;
    MtOutcome Interp = runMt(Pc, /*NumaRemote=*/true);
    Pc.Tier = superTier();
    MtOutcome Super = runMt(Pc, /*NumaRemote=*/true);
    EXPECT_TRUE(Super == Interp)
        << "policy=" << static_cast<int>(Policy) << "\n--- interp ---\n"
        << Interp.ObjectReport << "\n--- super ---\n" << Super.ObjectReport;
  }
}

/// Fuzzed logical schedules (per-round quantum draws, forced GC rounds,
/// drain splits) are still workloads; the tier may not show through any
/// of them. Fixed seeds keep the property stable in CI.
TEST(TierParity, FuzzedSchedulesAreTierInvariant) {
  for (uint64_t Seed : {0x9E3779B97F4A7C15ULL, 0xBF58476D1CE4E5B9ULL,
                        0x94D049BB133111EBULL, 0x2545F4914F6CDD1DULL,
                        0xD1342543DE82EF95ULL, 0xAF251AF3B0F025B5ULL}) {
    ParallelConfig Pc;
    Pc.SimThreads = 3;
    Pc.Iters = 100;
    Pc.Nlen = 128;
    Pc.HotElems = 8192;
    Pc.HeapBytesPerThread = 256 << 10;
    Pc.Fuzz.Enabled = true;
    Pc.Fuzz.Seed = Seed;
    Pc.Jobs = 1;
    MtOutcome Interp = runMt(Pc);
    Pc.Jobs = 2;
    Pc.Tier = superTier();
    MtOutcome Super = runMt(Pc);
    EXPECT_TRUE(Super == Interp)
        << "seed=0x" << std::hex << Seed << "\n--- interp ---\n"
        << Interp.ObjectReport << "\n--- super ---\n" << Super.ObjectReport;
  }
}

// --- Fault-injection parity ----------------------------------------------

/// Clears the process-global injector on scope exit so a failing
/// assertion cannot leak an armed plan into the next test.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::clear(); }
};

/// Outcome of one fault-campaign run: whether it failed, how, and what
/// the salvaged profile says.
struct FaultOutcome {
  bool Failed = false;
  int ErrorKind = -1;
  std::string Describe;
  std::string ObjectReport;
  uint64_t Samples = 0;

  bool operator==(const FaultOutcome &O) const {
    return Failed == O.Failed && ErrorKind == O.ErrorKind &&
           Describe == O.Describe && ObjectReport == O.ObjectReport &&
           Samples == O.Samples;
  }
};

FaultOutcome runFaulted(const FaultPlan &Plan, ExecTier Tier) {
  InjectorGuard Guard;
  FaultInjector::install(Plan);
  ParallelConfig Pc;
  Pc.SimThreads = 3;
  Pc.Iters = 60;
  Pc.Nlen = 128;
  Pc.HotElems = 8192;
  Pc.HeapBytesPerThread = 256 << 10;
  Pc.Jobs = 2;
  if (Tier == ExecTier::Super)
    Pc.Tier = superTier();
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  FaultOutcome O;
  try {
    runParallelWorkload(Vm, &Prof, Pc);
  } catch (const VmError &E) {
    O.Failed = true;
    O.ErrorKind = static_cast<int>(E.Kind);
    O.Describe = E.describe();
  }
  Prof.stop();
  FaultInjector::clear();
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.Samples = Prof.samplesHandled();
  return O;
}

/// Every fault key is a logical coordinate, so a campaign's outcome —
/// including whether it fails at all, the error kind, and the salvaged
/// partial profile — must agree between tiers: traces re-execute the
/// faulting instruction in the flat loop without re-drawing any fault.
TEST(TierParity, FaultCampaignsAreTierInvariant) {
  int Compared = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    for (int Preset = 0; Preset < 2; ++Preset) {
      FaultPlan Plan;
      Plan.Seed = 0x9E3779B97F4A7C15ULL * Seed;
      if (Preset == 0)
        Plan.rate(FaultSite::HeapAlloc) = 2e-4;
      else
        Plan.rate(FaultSite::GcCollect) = 0.5;
      FaultOutcome Interp = runFaulted(Plan, ExecTier::Interp);
      FaultOutcome Super = runFaulted(Plan, ExecTier::Super);
      EXPECT_TRUE(Super == Interp)
          << "seed=" << Seed << " preset=" << Preset
          << " interp failed=" << Interp.Failed << " '" << Interp.Describe
          << "' super failed=" << Super.Failed << " '" << Super.Describe
          << "'";
      ++Compared;
    }
  }
  EXPECT_EQ(Compared, 8);
}

// --- Quantum accounting ---------------------------------------------------

/// resume(MaxSteps) must pause at exactly the same step trajectory in
/// both tiers: trace admission charges the whole trace against the
/// quantum up front and declines when it does not fit, so quantum
/// boundaries land on identical instructions.
TEST(TierParity, QuantumPauseTrajectoryMatchesInterp) {
  auto Trajectory = [](ExecTier Tier, uint64_t Quantum) {
    VmConfig Cfg;
    Cfg.HeapBytes = 8 << 20;
    JavaVm Vm(Cfg);
    BytecodeProgram Program = buildBatikProgram(Vm.types());
    Program.load(Vm);
    JavaThread &T = Vm.startThread("tier", 0);
    Interpreter Interp(Vm, Program, T);
    if (Tier == ExecTier::Super)
      Interp.setTier(superTier());
    Interp.startCall("Main.run", {Value::fromInt(50), Value::fromInt(128)});
    std::vector<uint64_t> Pauses;
    while (Interp.resume(Quantum) == RunState::Paused)
      Pauses.push_back(Interp.stepsExecuted());
    Pauses.push_back(Interp.stepsExecuted());
    uint64_t Cycles = Vm.totalCycles();
    Vm.endThread(T);
    return std::make_tuple(Pauses, Cycles);
  };
  // An odd quantum guarantees boundaries land mid-loop, inside would-be
  // traces, so admission control is really exercised.
  for (uint64_t Quantum : {257u, 1031u, 8192u}) {
    auto Interp = Trajectory(ExecTier::Interp, Quantum);
    auto Super = Trajectory(ExecTier::Super, Quantum);
    EXPECT_EQ(std::get<0>(Super), std::get<0>(Interp)) << "q=" << Quantum;
    EXPECT_EQ(std::get<1>(Super), std::get<1>(Interp)) << "q=" << Quantum;
    EXPECT_GT(std::get<0>(Interp).size(), 2u) << "q=" << Quantum;
  }
}

// --- GcRequest re-execution accounting ------------------------------------

/// Regression test for the hot-counter double-bump: a GcRequest unwind
/// re-executes the faulting allocation in the flat loop, and that retry
/// dispatch must NOT bump the site counter again — otherwise trace
/// selection depends on GC timing and the profile stops being
/// heap-size-invariant in the warming phase. With a threshold too high
/// to ever compile, the counters are a pure dispatch census: one bump
/// per *logical* execution, so a GC-heavy tiny-heap run must census
/// identically to a GC-free large-heap one.
TEST(TierParity, GcRetryDoesNotDoubleBumpHotCounters) {
  auto Census = [](uint64_t HeapBytes, uint64_t *CollectionsOut) {
    VmConfig Cfg;
    Cfg.HeapBytes = HeapBytes;
    Cfg.HeapShards = 1;
    JavaVm Vm(Cfg);
    BytecodeProgram P = churnProgram(Vm.types());
    P.load(Vm);
    ExecutorConfig Ec;
    Ec.Jobs = 1;
    Ec.QuantumSteps = 4096;
    Ec.Tier = superTier(/*HotThreshold=*/1u << 30);
    Executor Ex(Vm, Ec);
    size_t Task = Ex.addThread(P, "T.main", {}, "census");
    Ex.run();
    EXPECT_FALSE(Ex.error().has_value());
    const TraceCache *Cache = Ex.interpreter(Task).traceCache();
    EXPECT_NE(Cache, nullptr);
    uint64_t Sum = 0;
    for (uint32_t Pc = 0; Pc < 64; ++Pc)
      Sum += Cache->siteCount(0, Pc);
    *CollectionsOut = Vm.gcTotals().Collections;
    Vm.endThread(Ex.thread(Task));
    return Sum;
  };
  uint64_t BigHeapGcs = 0, TinyHeapGcs = 0;
  uint64_t Big = Census(16ULL << 20, &BigHeapGcs);
  uint64_t Tiny = Census(64ULL << 10, &TinyHeapGcs);
  EXPECT_EQ(BigHeapGcs, 0u);
  EXPECT_GT(TinyHeapGcs, 0u) << "tiny heap never collected; the retry "
                                "path was not exercised";
  EXPECT_EQ(Tiny, Big) << "GC retries changed the dispatch census: the "
                          "faulting instruction's re-execution bumped its "
                          "hot-site counter twice";
  EXPECT_GT(Big, 0u);
}

// --- Deopt at safepoint ---------------------------------------------------

/// Safepoints invalidate every compiled trace (the flat loop owns all
/// resumed frames) and hot sites recompile on their next visit.
TEST(TierParity, SafepointsInvalidateAndRecompileTraces) {
  ParallelConfig Pc = mtWorkload();
  Pc.SimThreads = 2;
  JavaVm Vm(parallelVmConfig(Pc));
  BytecodeProgram Program = buildParallelWorkerProgram(Vm.types());
  Program.load(Vm);
  ExecutorConfig Ec;
  Ec.Jobs = 1;
  Ec.QuantumSteps = Pc.QuantumSteps;
  Ec.Tier = superTier();
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < Pc.SimThreads; ++I)
    Ex.addThread(Program, "Main.run",
                 {Value::fromInt(Pc.Iters), Value::fromInt(Pc.Nlen),
                  Value::fromInt(Pc.HotElems)},
                 "worker-" + std::to_string(I));
  Ex.run();
  EXPECT_FALSE(Ex.error().has_value());
  EXPECT_GT(Ex.safepoints(), 0u);

  for (size_t Task = 0; Task < Ex.numTasks(); ++Task) {
    const TraceCache *Cache = Ex.interpreter(Task).traceCache();
    ASSERT_NE(Cache, nullptr);
    // Every stop-the-world pause swept this cache...
    EXPECT_EQ(Cache->stats().Invalidations, Ex.safepoints());
    // ...and the hot loops recompiled afterwards: strictly more compiles
    // than the warm-up alone would produce.
    EXPECT_GT(Cache->stats().Compiles, 0u);
    EXPECT_FALSE(Ex.interpreter(Task).renderTraces().empty());
  }
  for (size_t Task = 0; Task < Ex.numTasks(); ++Task)
    Vm.endThread(Ex.thread(Task));
}

} // namespace
