//===- workloads_test.cpp - Workload catalog and shape regression ------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks over the workload catalogs plus parameterized shape
/// regressions: every Table 1 case study's measured speedup must stay in
/// its acceptance band, and every Table 2 case must stay flat.
///
//===----------------------------------------------------------------------===//

#include "workloads/AccuracyCases.h"
#include "workloads/CaseStudies.h"
#include "workloads/Insignificant.h"
#include "workloads/Kernels.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(workloads_test, 84.0, 40.0,
    "src/workloads/AccuracyCases.cpp",
    "src/workloads/AccuracyCases.h",
    "src/workloads/BytecodePrograms.cpp",
    "src/workloads/BytecodePrograms.h",
    "src/workloads/CaseStudies.cpp",
    "src/workloads/CaseStudies.h",
    "src/workloads/Figure1.cpp",
    "src/workloads/Figure1.h",
    "src/workloads/Insignificant.cpp",
    "src/workloads/Insignificant.h",
    "src/workloads/Kernels.cpp",
    "src/workloads/Kernels.h",
    "src/workloads/Suites.cpp",
    "src/workloads/Suites.h");

uint64_t cyclesOf(const VmConfig &Cfg,
                  const std::function<void(JavaVm &)> &Fn) {
  JavaVm Vm(Cfg);
  Fn(Vm);
  return Vm.totalCycles();
}

// --- Catalog structure -------------------------------------------------------

TEST(Catalog, Table1HasThirteenRows) {
  auto All = table1CaseStudies();
  EXPECT_EQ(All.size(), 13u);
  for (const CaseStudy &C : All) {
    EXPECT_FALSE(C.Application.empty());
    EXPECT_FALSE(C.ProblematicCode.empty());
    EXPECT_TRUE(C.Baseline && C.Optimized);
    EXPECT_GT(C.PaperSpeedup, 1.0);
    EXPECT_LT(C.MinSpeedup, C.MaxSpeedup);
    EXPECT_FALSE(C.ExpectClass.empty());
  }
}

TEST(Catalog, Table2HasNineRows) {
  auto All = table2InsignificantCases();
  EXPECT_EQ(All.size(), 9u);
  for (const InsignificantCase &IC : All) {
    EXPECT_GT(IC.PaperAllocationTimes, 0u);
    EXPECT_LE(IC.Study.PaperSpeedup, 1.02);
  }
}

TEST(Catalog, AccuracyHasFiveCases) {
  EXPECT_EQ(section6AccuracyCases().size(), 5u);
}

TEST(Catalog, Figure4HasFiftyEntriesInThreeSuites) {
  auto All = figure4Suites();
  ASSERT_EQ(All.size(), 50u);
  size_t Ren = 0, Dac = 0, Spec = 0;
  for (const SuiteEntry &E : All) {
    if (E.Suite == "Renaissance")
      ++Ren;
    else if (E.Suite == "Dacapo 9.12")
      ++Dac;
    else if (E.Suite == "SPECjvm2008")
      ++Spec;
  }
  EXPECT_EQ(Ren, 24u);
  EXPECT_EQ(Dac, 11u);
  EXPECT_EQ(Spec, 15u);
}

TEST(Catalog, CallbackHeavyEntriesHaveMostSmallAllocs) {
  // The paper singles out mnemonics/akka-uct/... as callback storms; the
  // derived parameters must preserve that ordering vs quiet entries.
  auto All = figure4Suites();
  auto Find = [&](const char *Name) -> const SuiteEntry & {
    for (const SuiteEntry &E : All)
      if (E.Name == Name)
        return E;
    ADD_FAILURE() << "missing " << Name;
    return All.front();
  };
  EXPECT_GT(Find("akka-uct").SmallAllocs, Find("dotty").SmallAllocs * 5);
  EXPECT_GT(Find("mnemonics").SmallAllocs, Find("als").SmallAllocs * 5);
}

// --- Kernel sanity -----------------------------------------------------------

TEST(Kernels, BloatHoistingReducesAllocations) {
  VmConfig Cfg;
  Cfg.HeapBytes = 2 << 20;
  BloatParams P;
  P.Iterations = 50;
  P.ObjectBytes = 2048;
  P.AccessesPerObject = 32;
  auto CountAllocs = [&](bool Hoist) {
    P.Hoist = Hoist;
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("m", 0);
    runBloatKernel(Vm, T, P);
    return Vm.heap().allocationsCount();
  };
  uint64_t Loop = CountAllocs(false);
  uint64_t Hoisted = CountAllocs(true);
  EXPECT_GE(Loop, 50u);
  EXPECT_LE(Hoisted, Loop - 49u + 2u);
}

TEST(Kernels, GrowSmallInitialCapacityCopiesMore) {
  VmConfig Cfg;
  Cfg.HeapBytes = 2 << 20;
  auto AllocsFor = [&](uint64_t Init) {
    GrowParams P;
    P.InitialCapacity = Init;
    P.FinalElements = 300;
    P.Rounds = 3;
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("m", 0);
    runGrowKernel(Vm, T, P);
    return Vm.heap().allocationsCount();
  };
  EXPECT_GT(AllocsFor(8), AllocsFor(512) + 3 * 4);
}

TEST(Kernels, FftInterchangeReducesMisses) {
  VmConfig Cfg;
  Cfg.HeapBytes = 8 << 20;
  Cfg.Machine.L2 = CacheConfig{128 * 1024, 64, 8};
  Cfg.Machine.L3 = CacheConfig{256 * 1024, 64, 16};
  auto MissesFor = [&](bool Interchanged) {
    FftParams P;
    P.LogN = 12;
    P.Interchanged = Interchanged;
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("m", 0);
    runFftKernel(Vm, T, P);
    return Vm.machine().stats().L1Misses;
  };
  uint64_t Strided = MissesFor(false);
  uint64_t Sequential = MissesFor(true);
  EXPECT_GT(Strided, Sequential * 2) << "interchange must slash misses";
}

TEST(Kernels, TilingReducesMisses) {
  VmConfig Cfg;
  Cfg.HeapBytes = 16 << 20;
  auto MissesFor = [&](bool Tiled) {
    TilingParams P;
    P.Rows = 256;
    P.Cols = 128;
    P.Reps = 1;
    P.RowMajorPasses = 0;
    P.Tiled = Tiled;
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("m", 0);
    runTilingKernel(Vm, T, P);
    return Vm.machine().stats().L1Misses;
  };
  EXPECT_GT(MissesFor(false), MissesFor(true) * 2);
}

TEST(Kernels, NumaMasterPlacementCausesRemoteTraffic) {
  VmConfig Cfg;
  Cfg.HeapBytes = 32 << 20;
  Cfg.Machine.L3 = CacheConfig{256 * 1024, 64, 16};
  NumaParams P;
  P.ArrayBytes = 2ULL << 20;
  P.Workers = 4;
  P.ReadsPerWorker = 1 << 14;
  auto RemoteFor = [&](NumaParams::Placement Place) {
    P.Place = Place;
    JavaVm Vm(Cfg);
    runNumaKernel(Vm, P);
    return Vm.machine().stats().RemoteAccesses;
  };
  uint64_t Master = RemoteFor(NumaParams::Placement::MasterFirstTouch);
  uint64_t Partitioned =
      RemoteFor(NumaParams::Placement::WorkerPartitions);
  EXPECT_GT(Master, 100u);
  EXPECT_LT(Partitioned, Master / 5);
}

// --- Shape regressions (1 repetition each; the bench runs 3) ------------------

class Table1ShapeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Table1ShapeTest, SpeedupWithinBand) {
  CaseStudy C = table1CaseStudies()[GetParam()];
  uint64_t Base = cyclesOf(C.Config, C.Baseline);
  uint64_t Opt = cyclesOf(C.Config, C.Optimized);
  double S = static_cast<double>(Base) / static_cast<double>(Opt);
  EXPECT_GE(S, C.MinSpeedup) << C.Application;
  EXPECT_LE(S, C.MaxSpeedup) << C.Application;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1ShapeTest,
                         ::testing::Range<size_t>(0, 13));

class Table2ShapeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Table2ShapeTest, OptimizationStaysFlat) {
  CaseStudy C = table2InsignificantCases()[GetParam()].Study;
  uint64_t Base = cyclesOf(C.Config, C.Baseline);
  uint64_t Opt = cyclesOf(C.Config, C.Optimized);
  double S = static_cast<double>(Base) / static_cast<double>(Opt);
  EXPECT_GE(S, C.MinSpeedup) << C.Application;
  EXPECT_LE(S, C.MaxSpeedup) << C.Application;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table2ShapeTest,
                         ::testing::Range<size_t>(0, 9));

} // namespace
