#!/usr/bin/env python3
"""Per-module coverage measurement and floor enforcement.

Usage:
  coverage_gate.py --build-dir build/coverage [--repo-root DIR]
                   [--module NAME ...] [--summary-md FILE]
                   [--summary-json FILE] [--gcov GCOV]

Consumes tests/harness/modules.json (generated from the DJX_TEST_MODULE
declarations by tools/gen_test_manifest.py) and, for every module that
owns source files, answers the question "how much of its *own* files does
this suite cover?" — then fails when any module is below its declared
line/branch floors.

Isolation: every test binary links the same static `djx` library, so a
naive run would mix all suites' counters into one shared set of .gcda
files. Instead each module's binary runs with

  GCOV_PREFIX=<scratch>/<module>   GCOV_PREFIX_STRIP=0

which redirects its .gcda dumps into a private tree (keyed by the
absolute object path). The matching .gcno graph files are copied in from
the build tree, `gcov --json-format --stdout` turns each pair into a
JSON report, and the per-file line/branch counts are aggregated over the
module's owned files only. Credit earned by *other* suites never leaks
in, so the floor really gates "this module's tests cover this module's
files".

Requires a build configured with the `coverage` CMake preset (gcc
--coverage). No gcovr/lcov needed — only gcov itself.

Exit codes: 0 all floors met, 1 at least one module under a floor (or a
module's binary failed), 2 usage/environment error.
"""

import argparse
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile


def find_pairs(prefix_dir, build_dir):
    """Yields (gcda, gcno) pairs for a module's redirected dump tree.

    With GCOV_PREFIX_STRIP=0 a counter for object <abs>.o lands at
    <prefix_dir>/<abs>.gcda; the compile-time graph file sits next to the
    original object in the build tree. gcov needs the two side by side,
    so the .gcno is copied into the prefix tree.
    """
    for dirpath, _dirs, files in os.walk(prefix_dir):
        for name in files:
            if not name.endswith(".gcda"):
                continue
            gcda = os.path.join(dirpath, name)
            rel = os.path.relpath(gcda, prefix_dir)
            orig_gcno = "/" + rel[: -len(".gcda")] + ".gcno"
            gcno = gcda[: -len(".gcda")] + ".gcno"
            if not os.path.exists(orig_gcno):
                # Out-of-build-tree objects (system gtest, say) have no
                # graph file we can find; skip them.
                continue
            if not os.path.exists(gcno):
                shutil.copy2(orig_gcno, gcno)
            yield gcda, gcno
    del build_dir


def gcov_json(gcov, gcda):
    """Runs gcov on one .gcda and returns its parsed JSON report."""
    proc = subprocess.run(
        [gcov, "--stdout", "--json-format", "--branch-probabilities",
         os.path.basename(gcda)],
        cwd=os.path.dirname(gcda),
        capture_output=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"gcov failed on {gcda}: {proc.stderr.decode(errors='replace')}"
        )
    out = proc.stdout
    if out[:2] == b"\x1f\x8b":  # Some gcovs gzip even on stdout.
        out = gzip.decompress(out)
    return json.loads(out)


def accumulate(report, repo_root, stats):
    """Folds one gcov JSON report into {repo-rel file: line/branch sets}.

    Line identity must be per (file, line) across reports — a header's
    inline function appears in many objects' reports, and a line counts
    as covered when *any* of them executed it.
    """
    for f in report.get("files", []):
        path = f.get("file", "")
        if not os.path.isabs(path):
            path = os.path.join(report.get("current_working_directory", ""),
                                path)
        path = os.path.normpath(path)
        try:
            rel = os.path.relpath(path, repo_root)
        except ValueError:
            continue
        if rel.startswith(".."):
            continue
        st = stats.setdefault(
            rel,
            {"lines": {}, "branches": {}},
        )
        for line in f.get("lines", []):
            no = line.get("line_number")
            st["lines"][no] = st["lines"].get(no, 0) + line.get("count", 0)
            for bi, br in enumerate(line.get("branches", [])):
                key = (no, bi)
                st["branches"][key] = (
                    st["branches"].get(key, 0) + br.get("count", 0)
                )


def summarize(stats, files):
    """(covered, total) line and branch counts over the owned file set."""
    lc = lt = bc = bt = 0
    per_file = {}
    for rel in files:
        st = stats.get(rel)
        if st is None:
            per_file[rel] = None  # No instrumented code seen at all.
            continue
        flc = sum(1 for c in st["lines"].values() if c > 0)
        flt = len(st["lines"])
        fbc = sum(1 for c in st["branches"].values() if c > 0)
        fbt = len(st["branches"])
        per_file[rel] = (flc, flt, fbc, fbt)
        lc, lt, bc, bt = lc + flc, lt + flt, bc + fbc, bt + fbt
    return lc, lt, bc, bt, per_file


def pct(covered, total):
    return 100.0 * covered / total if total else 100.0


def run_module(name, mod, opts, results):
    binary = os.path.join(opts.build_dir, name)
    if not os.path.exists(binary):
        results.append({"module": name, "error": f"no binary at {binary}"})
        return
    with tempfile.TemporaryDirectory(prefix=f"djxcov_{name}_") as scratch:
        env = dict(os.environ)
        env["GCOV_PREFIX"] = scratch
        env["GCOV_PREFIX_STRIP"] = "0"
        argv = [binary] + [
            a.replace("$<TARGET_FILE:djxperf>",
                      os.path.join(opts.build_dir, "djxperf"))
            for a in mod.get("args", [])
        ]
        proc = subprocess.run(argv, env=env, capture_output=True,
                              cwd=opts.build_dir)
        if proc.returncode != 0:
            results.append({
                "module": name,
                "error": f"test binary exited {proc.returncode}",
                "output": proc.stdout.decode(errors="replace")[-4000:],
            })
            return
        stats = {}
        for gcda, _gcno in find_pairs(scratch, opts.build_dir):
            accumulate(gcov_json(opts.gcov, gcda), opts.repo_root, stats)
    lc, lt, bc, bt, per_file = summarize(stats, mod["files"])
    results.append({
        "module": name,
        "line_pct": round(pct(lc, lt), 2),
        "branch_pct": round(pct(bc, bt), 2),
        "line_floor_pct": mod["line_floor_pct"],
        "branch_floor_pct": mod["branch_floor_pct"],
        "lines": [lc, lt],
        "branches": [bc, bt],
        "files": {
            rel: (None if v is None
                  else {"line_pct": round(pct(v[0], v[1]), 2),
                        "branch_pct": round(pct(v[2], v[3]), 2)})
            for rel, v in per_file.items()
        },
    })


def render_markdown(results):
    lines = [
        "### Per-module coverage (own files only)",
        "",
        "| module | lines | floor | branches | floor | ok |",
        "|---|---:|---:|---:|---:|:--|",
    ]
    for r in results:
        if "error" in r:
            lines.append(f"| `{r['module']}` | — | — | — | — | "
                         f"**ERROR**: {r['error']} |")
            continue
        ok = (r["line_pct"] >= r["line_floor_pct"]
              and r["branch_pct"] >= r["branch_floor_pct"])
        lines.append(
            f"| `{r['module']}` | {r['line_pct']:.1f}% "
            f"| {r['line_floor_pct']:.1f}% | {r['branch_pct']:.1f}% "
            f"| {r['branch_floor_pct']:.1f}% "
            f"| {'yes' if ok else '**FAIL**'} |"
        )
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(
        description="Enforce per-module coverage floors.")
    ap.add_argument("--build-dir", required=True,
                    help="a build configured with the `coverage` preset")
    ap.add_argument("--repo-root", default=None)
    ap.add_argument("--module", action="append", default=None,
                    help="gate only these modules (repeatable)")
    ap.add_argument("--summary-md", default=None)
    ap.add_argument("--summary-json", default=None)
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    opts = ap.parse_args()

    opts.repo_root = os.path.abspath(
        opts.repo_root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    opts.build_dir = os.path.abspath(opts.build_dir)

    manifest_path = os.path.join(opts.repo_root, "tests", "harness",
                                 "modules.json")
    try:
        with open(manifest_path) as f:
            modules = json.load(f)["modules"]
    except (OSError, ValueError, KeyError) as err:
        print(f"coverage_gate: cannot read {manifest_path}: {err}",
              file=sys.stderr)
        return 2
    if shutil.which(opts.gcov) is None:
        print(f"coverage_gate: no such gcov: {opts.gcov}", file=sys.stderr)
        return 2

    selected = {
        name: mod for name, mod in sorted(modules.items())
        if mod["files"] and (not opts.module or name in opts.module)
    }
    if opts.module:
        unknown = set(opts.module) - set(selected)
        if unknown:
            print(f"coverage_gate: unknown/fileless modules: "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    results = []
    for name, mod in selected.items():
        print(f"coverage_gate: measuring {name} "
              f"({len(mod['files'])} owned files)...", flush=True)
        try:
            run_module(name, mod, opts, results)
        except RuntimeError as err:
            results.append({"module": name, "error": str(err)})

    md = render_markdown(results)
    print(md)
    if opts.summary_md:
        with open(opts.summary_md, "w") as f:
            f.write(md)
    if opts.summary_json:
        with open(opts.summary_json, "w") as f:
            json.dump({"results": results}, f, indent=2, sort_keys=True)

    failures = []
    for r in results:
        if "error" in r:
            failures.append(f"{r['module']}: {r['error']}")
            continue
        if r["line_pct"] < r["line_floor_pct"]:
            failures.append(
                f"{r['module']}: line coverage {r['line_pct']:.1f}% is "
                f"below its {r['line_floor_pct']:.1f}% floor")
        if r["branch_pct"] < r["branch_floor_pct"]:
            failures.append(
                f"{r['module']}: branch coverage {r['branch_pct']:.1f}% is "
                f"below its {r['branch_floor_pct']:.1f}% floor")
    for failure in failures:
        print(f"coverage_gate: FLOOR FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
