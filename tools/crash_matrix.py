#!/usr/bin/env python3
"""Crash matrix for the profile journal: SIGKILL a journaled run at
seeded points mid-flight, then prove `djxperf recover` salvages a
consistent prefix.

For every kill point:
  - `djxperf recover` must exit 0 and print a well-formed report (a
    DEGRADED banner plus truthful kept/dropped accounting when the tail
    was lost);
  - when at least one round was durable, the salvaged report must be
    byte-identical to a reference run stopped at the same round
    (`--max-rounds R`) — the truncation rule recovers *exactly* the
    state at the last durable commit, never more, never less.

A second campaign re-runs the matrix under injected journal I/O faults
(torn writes, transient write errors, corrupt bits): the run itself must
still succeed, and recover must never crash and never read past a bad
checksum.

Usage: crash_matrix.py --djxperf PATH [--workload parallel4] [--jobs 2]
                       [--points 6] [--seed N]
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPORT_MARKER = "=== DJXPerf object-centric profile ==="
FAILURES = []


def fail(label, message):
    FAILURES.append(f"{label}: {message}")
    print(f"FAIL [{label}] {message}")


def ok(label, message):
    print(f"ok   [{label}] {message}")


def run(cmd, timeout=300):
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=timeout)
    return proc.returncode, proc.stdout, proc.stderr


def report_body(stdout):
    """Strips any degraded banner: the report proper starts at the
    object-centric header."""
    idx = stdout.find(REPORT_MARKER)
    return stdout[idx:] if idx >= 0 else None


def recover(djxperf, journal):
    return run([djxperf, "recover", journal])


def parse_last_round(stderr):
    m = re.search(r"last durable epoch \d+ \(round (\d+)\)", stderr)
    if m:
        return int(m.group(1))
    m = re.search(r"through epoch \d+ \(round (\d+)\)", stderr)
    return int(m.group(1)) if m else None


def kill_campaign(djxperf, workload, jobs, points, base_duration):
    """SIGKILL at evenly spread fractions of the measured run time."""
    for i in range(points):
        frac = (i + 0.5) / points
        delay = base_duration * frac
        label = f"kill@{frac:.2f}"
        with tempfile.TemporaryDirectory() as td:
            journal = os.path.join(td, "run.djxj")
            proc = subprocess.Popen(
                [djxperf, workload, "--jobs", str(jobs),
                 "--journal", journal],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            time.sleep(delay)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait()

            rc, out, err = recover(djxperf, journal)
            if rc != 0:
                fail(label, f"recover exited {rc}: {err.strip()}")
                continue
            if report_body(out) is None:
                fail(label, "recover printed no object-centric report")
                continue
            if killed and "DEGRADED" not in out:
                # A kill can land after the Close flush; only a journal
                # that really lost its tail must carry the banner.
                if "Close" not in err and "dropped 0 uncommitted" not in err:
                    fail(label, "torn journal recovered without a "
                                "DEGRADED banner")
                    continue

            last_round = parse_last_round(err)
            if last_round is None:
                fail(label, f"no durable-round accounting in: {err.strip()}")
                continue
            if last_round < 1 or "without a Close sentinel" not in out:
                # Nothing durable yet, or the journal closed cleanly —
                # no reference point to compare against.
                ok(label, f"recovered (round {last_round}, "
                          f"killed={killed}); no torn-prefix comparison")
                continue

            ref_rc, ref_out, _ = run(
                [djxperf, workload, "--jobs", str(jobs),
                 "--max-rounds", str(last_round)])
            if ref_rc != 0:
                fail(label, f"reference --max-rounds {last_round} "
                            f"exited {ref_rc}")
                continue
            if report_body(out) != report_body(ref_out):
                fail(label, f"salvaged report != --max-rounds "
                            f"{last_round} reference")
                continue
            ok(label, f"salvaged report == --max-rounds {last_round} "
                      f"reference")


def fault_campaign(djxperf, workload, jobs, seed):
    """Journal I/O faults must never fail the run, and recover must
    salvage whatever survived without crashing."""
    plans = [
        ("journal-short=0.05", "torn tail"),
        ("journal-error=0.3", "transient write errors"),
        ("journal-corrupt=0.01", "corrupt bits"),
    ]
    for i, (rate, what) in enumerate(plans):
        label = f"fault:{rate.split('=')[0]}"
        with tempfile.TemporaryDirectory() as td:
            journal = os.path.join(td, "run.djxj")
            rc, out, err = run(
                [djxperf, workload, "--jobs", str(jobs),
                 "--journal", journal, "--fault-rate", rate,
                 "--fault-seed", str(seed + i)])
            if rc != 0:
                fail(label, f"journal faults failed the run (exit {rc})")
                continue
            if report_body(out) is None:
                fail(label, "faulted run printed no report")
                continue
            rc, out, err = recover(djxperf, journal)
            if rc != 0:
                fail(label, f"recover exited {rc} after {what}")
                continue
            ok(label, f"run survived {what}; recover exited 0")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--djxperf", required=True,
                    help="path to the built djxperf binary")
    ap.add_argument("--workload", default="parallel4")
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--points", type=int, default=6,
                    help="SIGKILL points spread across the run")
    ap.add_argument("--seed", type=int, default=1234,
                    help="base seed for the fault campaigns")
    args = ap.parse_args()

    # Calibrate: one clean journaled run measures the kill window and
    # proves the happy path (exit 0, recover reproduces it).
    with tempfile.TemporaryDirectory() as td:
        journal = os.path.join(td, "calib.djxj")
        start = time.monotonic()
        rc, out, _ = run([args.djxperf, args.workload, "--jobs",
                          str(args.jobs), "--journal", journal])
        duration = time.monotonic() - start
        if rc != 0:
            fail("calibrate", f"clean journaled run exited {rc}")
            sys.exit(1)
        rc, rec_out, _ = recover(args.djxperf, journal)
        if rc != 0 or rec_out != out:
            fail("calibrate", "recover of a complete journal did not "
                              "reproduce the run's stdout")
        else:
            ok("calibrate", f"clean round trip in {duration:.2f}s")

    kill_campaign(args.djxperf, args.workload, args.jobs, args.points,
                  duration)
    fault_campaign(args.djxperf, args.workload, args.jobs, args.seed)

    print(f"\ncrash_matrix: {len(FAILURES)} failure(s)")
    sys.exit(1 if FAILURES else 0)


if __name__ == "__main__":
    main()
