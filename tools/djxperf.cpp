//===- djxperf.cpp - Command-line launcher ----------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `djxperf` command-line tool: the moral equivalent of launching the
/// real profiler via JVM agent options (Figure 3's workflow). Picks a
/// workload from the built-in catalog, configures the agent from flags,
/// runs collector + analyzer, and emits text/HTML reports and per-thread
/// profile files.
///
/// Examples:
///   djxperf --list
///   djxperf "ObjectLayout 1.0.5"
///   djxperf --event tlbmiss --period 128 "SPECjvm2008: Scimark.fft.large"
///   djxperf --optimized --html /tmp/druid.html "Apache Druid"
///   djxperf --size-threshold 0 --write-profiles /tmp/prof figure1
///   djxperf --journal /tmp/run.djxj parallel4
///   djxperf recover /tmp/run.djxj
///   djxperf merge /tmp/a.djxj /tmp/b.djxj
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticReport.h"
#include "core/DjxPerf.h"
#include "core/HtmlReport.h"
#include "core/Report.h"
#include "io/JournalReader.h"
#include "io/ProfileJournal.h"
#include "support/FaultInjector.h"
#include "support/VmError.h"
#include "workloads/AccuracyCases.h"
#include "workloads/CaseStudies.h"
#include "workloads/Figure1.h"
#include "workloads/Insignificant.h"
#include "workloads/Parallel.h"
#include "workloads/Suites.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace djx;

namespace {

struct CliWorkload {
  std::string Name;
  std::string Kind; // "case-study" | "accuracy" | "table2" | "suite" | ...
  VmConfig Config;
  std::function<void(JavaVm &)> Baseline;
  std::function<void(JavaVm &)> Optimized; // May be null.
  /// Multi-threaded executor workload: ignores Baseline/Optimized and runs
  /// Parallel.SimThreads simulated threads under --jobs host workers.
  bool MultiThreaded = false;
  /// Drive runNumaRemoteWorkload (the §7.5/§7.6 case-study pair) instead
  /// of the plain parallel worker.
  bool NumaRemote = false;
  ParallelConfig Parallel;
};

std::vector<CliWorkload> catalog() {
  std::vector<CliWorkload> All;
  auto Add = [&All](std::string Name, std::string Kind, VmConfig Config,
                    std::function<void(JavaVm &)> Baseline,
                    std::function<void(JavaVm &)> Optimized) {
    CliWorkload W;
    W.Name = std::move(Name);
    W.Kind = std::move(Kind);
    W.Config = std::move(Config);
    W.Baseline = std::move(Baseline);
    W.Optimized = std::move(Optimized);
    All.push_back(std::move(W));
  };
  for (const CaseStudy &C : table1CaseStudies())
    Add(C.Application, "case-study", C.Config, C.Baseline, C.Optimized);
  for (const CaseStudy &C : section6AccuracyCases())
    Add(C.Application, "accuracy", C.Config, C.Baseline, C.Optimized);
  for (const InsignificantCase &IC : table2InsignificantCases())
    Add(IC.Study.Application + " (table2)", "table2", IC.Study.Config,
        IC.Study.Baseline, IC.Study.Optimized);
  for (const SuiteEntry &E : figure4Suites())
    Add(E.Suite + "/" + E.Name, "suite", E.Config,
        [E](JavaVm &Vm) { runSuiteEntry(Vm, E); }, nullptr);
  {
    CliWorkload W;
    W.Name = "figure1";
    W.Kind = "motivation";
    W.Config.HeapBytes = 8 << 20;
    W.Baseline = [](JavaVm &Vm) { runFigure1Workload(Vm); };
    All.push_back(std::move(W));
  }
  // Multi-threaded executor workloads: N simulated batik threads on a
  // sharded heap; --jobs picks the host worker count (results identical
  // for any value).
  for (unsigned SimThreads : {2u, 4u, 8u}) {
    CliWorkload W;
    W.Name = "parallel" + std::to_string(SimThreads);
    W.Kind = "mt";
    W.MultiThreaded = true;
    W.Parallel.SimThreads = SimThreads;
    // 512 KiB shards with a 128 KiB live hot array: the churn fills each
    // shard every ~350 iterations, so safepoint GCs actually happen.
    W.Parallel.Iters = 400;
    W.Parallel.Nlen = 256;
    W.Parallel.HeapBytesPerThread = 512 << 10;
    W.Config = parallelVmConfig(W.Parallel);
    All.push_back(std::move(W));
  }
  // NUMA case-study pair (§7.5/§7.6): a producer/consumer handoff where
  // each worker sweeps its neighbour's hot array. The baseline is
  // remote-heavy under first-touch; the "Fixed" entry bakes in the
  // interleave placement fix. --numa-policy overrides either.
  for (bool Fixed : {false, true}) {
    CliWorkload W;
    W.Name = Fixed ? "numaRemoteFixed" : "numaRemote";
    W.Kind = "numa-mt";
    W.MultiThreaded = true;
    W.NumaRemote = true;
    W.Parallel.SimThreads = 4;
    W.Parallel.Iters = 300;
    W.Parallel.Nlen = 256;
    // 256 KiB hot arrays: above the numaRemote machine's 128 KiB L3, so
    // every sweep pass reaches DRAM and remote traffic is real.
    W.Parallel.HotElems = 32768;
    W.Parallel.HeapBytesPerThread = 512 << 10;
    W.Parallel.Policy =
        Fixed ? NumaPolicy::Interleave : NumaPolicy::FirstTouch;
    W.Config = numaRemoteVmConfig(W.Parallel);
    All.push_back(std::move(W));
  }
  return All;
}

std::optional<PerfEventKind> parseEvent(const std::string &S) {
  if (S == "access")
    return PerfEventKind::MemAccess;
  if (S == "l1miss")
    return PerfEventKind::L1Miss;
  if (S == "l2miss")
    return PerfEventKind::L2Miss;
  if (S == "l3miss")
    return PerfEventKind::L3Miss;
  if (S == "tlbmiss")
    return PerfEventKind::TlbMiss;
  if (S == "latency")
    return PerfEventKind::LoadLatency;
  if (S == "remote")
    return PerfEventKind::RemoteAccess;
  return std::nullopt;
}

void usage(const char *Argv0) {
  std::printf(
      "usage: %s [options] <workload>\n"
      "       %s recover <journal> [--html <file>]\n"
      "       %s merge <journal>... [--html <file>]\n"
      "  --list                 list available workloads\n"
      "  --optimized            run the workload's optimized variant\n"
      "  --event <kind>         access|l1miss|l2miss|l3miss|tlbmiss|"
      "latency|remote (default l1miss)\n"
      "  --period <n>           sampling period in events (default 64)\n"
      "  --size-threshold <n>   size filter S in bytes (default 1024; 0 ="
      " monitor everything)\n"
      "  --no-gc-handling       disable the GC relocation machinery\n"
      "  --no-numa              disable NUMA remote-access diagnosis\n"
      "  --report <which>       object|code|both (default object)\n"
      "  --top <n>              groups to show (default 10)\n"
      "  --jobs <n>             host worker threads for mt workloads "
      "(default: hardware concurrency; 1 = serial; results are identical "
      "for any value)\n"
      "  --numa-policy <p>      shard placement for mt workloads: "
      "first-touch|bind|interleave (default: the workload's own; "
      "first-touch unless noted)\n"
      "  --tier <t>             execution tier: interp|super (default "
      "interp; results are byte-identical for either)\n"
      "  --hot-threshold <n>    dispatches before a pc compiles to a "
      "trace (super tier; default 16)\n"
      "  --max-trace-len <n>    max interpreter steps fused into one "
      "trace (super tier; default 64)\n"
      "  --dump-traces          print compiled traces to stderr after "
      "the run (super tier, mt workloads)\n"
      "  --no-analysis-fusion   disable analysis-proven trace fusions "
      "(super tier; results are byte-identical either way)\n"
      "  --static-report        append a static allocation-site section "
      "(escape class, loop depth) joined against the profile; mt "
      "workloads run bytecode-instrumented\n"
      "  --heap-bytes <n>       override the workload's heap size (mt "
      "workloads: bytes per simulated thread)\n"
      "  --stall-timeout-ms <n> watchdog timeout for mt workloads "
      "(default 120000; 0 disables)\n"
      "  --fault-rate <s>=<p>   inject faults: site alloc|ring|gc|stall|"
      "journal-short|journal-error|journal-corrupt, probability p in "
      "[0,1]; repeatable\n"
      "  --fault-seed <n>       seed for fault injection (default: "
      "$DJX_FAULT_SEED, else random; printed to stderr)\n"
      "  --journal <file>       stream checksummed profile epochs to a "
      "crash-durable journal (recover/merge read it back)\n"
      "  --max-rounds <n>       end an mt workload cleanly after n "
      "executor rounds (0 = run to completion; the reference oracle for "
      "truncated-journal recovery)\n"
      "  --html <file>          also write a self-contained HTML report\n"
      "  --write-profiles <dir> dump one .djxprof file per thread\n"
      "exit codes: 0 success, 2 usage error, 3 out-of-memory, 4 step "
      "limit,\n"
      "  5 invalid bytecode, 6 worker stall, 7 unusable journal "
      "(recover/merge),\n"
      "  130 interrupted (SIGINT/SIGTERM), 1 internal error. On any VM\n"
      "  failure a partial profile is salvaged and the report is marked\n"
      "  DEGRADED; with --journal the salvaged state is also made durable\n"
      "  before exit.\n",
      Argv0, Argv0, Argv0);
}

/// Parses "alloc=0.5" style --fault-rate operands into \p Plan.
bool parseFaultRate(const std::string &V, FaultPlan &Plan) {
  auto Eq = V.find('=');
  if (Eq == std::string::npos)
    return false;
  std::string Site = V.substr(0, Eq);
  double Rate = std::strtod(V.c_str() + Eq + 1, nullptr);
  if (Rate < 0.0 || Rate > 1.0)
    return false;
  if (Site == "alloc")
    Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = Rate;
  else if (Site == "ring")
    Plan.Rate[static_cast<int>(FaultSite::RingPush)] = Rate;
  else if (Site == "gc")
    Plan.Rate[static_cast<int>(FaultSite::GcCollect)] = Rate;
  else if (Site == "stall")
    Plan.Rate[static_cast<int>(FaultSite::QuantumClaim)] = Rate;
  else if (Site == "journal-short")
    Plan.Rate[static_cast<int>(FaultSite::JournalShortWrite)] = Rate;
  else if (Site == "journal-error")
    Plan.Rate[static_cast<int>(FaultSite::JournalWriteError)] = Rate;
  else if (Site == "journal-corrupt")
    Plan.Rate[static_cast<int>(FaultSite::JournalCorruptByte)] = Rate;
  else
    return false;
  return true;
}

/// First termination signal caught (0 = none). The handler only sets the
/// flag; the executor ends the session at the next round barrier and the
/// normal unwind path flushes and closes the journal. A second signal
/// restores the default disposition and re-raises, so a wedged run can
/// still be killed.
volatile std::sig_atomic_t GSignal = 0;

void onTermSignal(int Sig) {
  if (GSignal != 0) {
    std::signal(Sig, SIG_DFL);
    std::raise(Sig);
    return;
  }
  GSignal = Sig;
}

/// Render options a journal's Meta segment pins down, so recover/merge
/// reproduce the original run's report bytes.
ReportOptions optionsFromMeta(const JournalMeta &M) {
  ReportOptions O;
  if (M.EventKind < kNumPerfEventKinds)
    O.SortKind = static_cast<PerfEventKind>(M.EventKind);
  O.TopGroups = M.TopGroups;
  O.TopAccessContexts = M.TopAccessContexts;
  O.MinShare = M.MinShare;
  O.ShowNuma = M.ShowNuma;
  return O;
}

std::string renderMetaReport(const MergedProfile &P,
                             const MethodRegistry &Methods,
                             const JournalMeta &M) {
  ReportOptions O = optionsFromMeta(M);
  std::string Out;
  if (M.ReportMode == 0 || M.ReportMode == 2)
    Out += renderObjectCentric(P, Methods, O);
  if (M.ReportMode == 1 || M.ReportMode == 2)
    Out += renderCodeCentric(P, Methods, O);
  return Out;
}

/// Banner for a journal whose tail was lost (no clean Close, or valid
/// segments dropped as uncommitted): states exactly what was kept and
/// what was dropped, like renderDegradedBanner does for failed runs.
std::string journalTruncationBanner(const std::string &Path,
                                    const JournalRecovery &R) {
  std::ostringstream OS;
  OS << "=== DJXPerf DEGRADED report: journal truncated, salvaged prefix "
        "only ===\n";
  OS << "journal:  " << Path << '\n';
  OS << "kept:     " << R.SegmentsCommitted << " committed segment(s), "
     << R.BytesKept << " bytes, last durable epoch " << R.LastEpoch
     << " (round " << R.LastRound << ")\n";
  OS << "dropped:  " << R.SegmentsUncommitted
     << " uncommitted segment(s), " << R.TrailingBytes
     << " trailing byte(s)\n";
  std::string Reason = R.TruncationReason;
  if (Reason.empty())
    Reason = R.Closed ? "bytes after the Close sentinel"
                      : "journal ends without a Close sentinel (crash "
                        "or kill before the run finished)";
  OS << "reason:   " << Reason << '\n';
  OS << "The profile below reflects the last durable epoch only; "
        "everything after it was lost.\n\n";
  return OS.str();
}

/// Per-file stderr accounting shared by recover and merge.
void printJournalAccounting(const std::string &Path,
                            const JournalRecovery &R) {
  std::fprintf(stderr,
               "djxperf: %s: kept %llu committed segment(s) (%llu bytes) "
               "through epoch %llu (round %llu); dropped %llu "
               "uncommitted segment(s), %llu trailing byte(s)%s%s\n",
               Path.c_str(), (unsigned long long)R.SegmentsCommitted,
               (unsigned long long)R.BytesKept,
               (unsigned long long)R.LastEpoch,
               (unsigned long long)R.LastRound,
               (unsigned long long)R.SegmentsUncommitted,
               (unsigned long long)R.TrailingBytes,
               R.TruncationReason.empty() ? "" : "; stopped at: ",
               R.TruncationReason.c_str());
}

/// `djxperf recover <journal> [--html <file>]`: salvage the valid prefix
/// and render the report the journaled run would have produced. A
/// complete journal reproduces the run's stdout byte for byte (degraded
/// banner included, for failed runs); a torn journal gets a truncation
/// banner stating what was kept and dropped. Exit 0 unless the file is
/// not a usable journal at all (exit code of JournalCorrupt).
int runRecover(int Argc, char **Argv) {
  std::string Path, HtmlPath;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--html" && I + 1 < Argc) {
      HtmlPath = Argv[++I];
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown recover flag '%s'\n", A.c_str());
      return 2;
    } else if (Path.empty()) {
      Path = A;
    } else {
      std::fprintf(stderr, "error: recover takes one journal\n");
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: %s recover <journal> [--html <file>]\n",
                 Argv[0]);
    return 2;
  }

  JournalRecovery R = readJournal(Path);
  if (!R.HeaderValid) {
    std::fprintf(stderr, "djxperf: FAILED: %s: %s\n", Path.c_str(),
                 R.HeaderError.c_str());
    return vmErrorExitCode(VmErrorKind::JournalCorrupt);
  }
  printJournalAccounting(Path, R);

  MethodRegistry Methods = buildJournalMethodRegistry(R);
  std::vector<const ThreadProfile *> Parts;
  Parts.reserve(R.Profiles.size());
  for (const ThreadProfile &P : R.Profiles)
    Parts.push_back(&P);
  MergedProfile P = mergeProfiles(Parts);

  if (R.Closed && !R.CloseClean)
    std::fputs(renderDegradedBanner(R.CloseError, R.CloseSamplesHandled,
                                    R.CloseSamplesDropped)
                   .c_str(),
               stdout);
  else if (R.degraded())
    std::fputs(journalTruncationBanner(Path, R).c_str(), stdout);
  std::fputs(renderMetaReport(P, Methods, R.Meta).c_str(), stdout);

  if (!HtmlPath.empty()) {
    std::string Title =
        R.Meta.Title.empty() ? "DJXPerf: recovered " + Path : R.Meta.Title;
    if (!writeHtmlReport(P, Methods, HtmlPath, optionsFromMeta(R.Meta),
                         Title)) {
      std::fprintf(stderr, "error: cannot write %s\n", HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "djxperf: wrote %s\n", HtmlPath.c_str());
  }
  return 0;
}

/// `djxperf merge <j1> <j2> ... [--html <file>]`: fold many journals
/// into one aggregate report. Thread ids are offset per input so every
/// simulated thread stays distinct (keyed-sum semantics: the merged
/// totals are the sums of the per-journal reports); method ids are
/// remapped through one union registry. Unusable inputs are skipped with
/// per-file accounting; exit is 0 if at least one input contributed.
int runMerge(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  std::string HtmlPath;
  for (int I = 2; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--html" && I + 1 < Argc) {
      HtmlPath = Argv[++I];
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown merge flag '%s'\n", A.c_str());
      return 2;
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s merge <journal>... [--html <file>]\n", Argv[0]);
    return 2;
  }

  MethodRegistry Union;
  std::vector<ThreadProfile> Merged;
  JournalMeta Meta;
  bool HaveMeta = false;
  uint64_t TidOffset = 0;
  unsigned Usable = 0;
  for (const std::string &Path : Paths) {
    JournalRecovery R = readJournal(Path);
    if (!R.HeaderValid) {
      std::fprintf(stderr, "djxperf: %s: skipped (%s)\n", Path.c_str(),
                   R.HeaderError.c_str());
      continue;
    }
    ++Usable;
    printJournalAccounting(Path, R);
    if (!HaveMeta && R.HasMeta) {
      Meta = R.Meta;
      HaveMeta = true;
    }
    std::vector<MethodId> Map;
    Map.reserve(R.Methods.size());
    for (const MethodInfo &M : R.Methods)
      Map.push_back(Union.getOrRegister(M.ClassName, M.MethodName,
                                        M.LineTable));
    uint64_t MaxTid = TidOffset;
    for (const auto &[Tid, Text] : R.Snapshots) {
      (void)Tid;
      std::istringstream IS(remapSnapshotText(Text, TidOffset, Map));
      ThreadProfile P;
      if (!P.readFrom(IS)) {
        std::fprintf(stderr,
                     "djxperf: %s: dropped one unparseable snapshot\n",
                     Path.c_str());
        continue;
      }
      MaxTid = std::max(MaxTid, P.threadId());
      Merged.push_back(std::move(P));
    }
    TidOffset = MaxTid;
  }
  if (Usable == 0) {
    std::fprintf(stderr, "djxperf: FAILED: no usable journals\n");
    return vmErrorExitCode(VmErrorKind::JournalCorrupt);
  }

  std::vector<const ThreadProfile *> Parts;
  Parts.reserve(Merged.size());
  for (const ThreadProfile &P : Merged)
    Parts.push_back(&P);
  MergedProfile P = mergeProfiles(Parts);
  std::fputs(renderMetaReport(P, Union, Meta).c_str(), stdout);

  if (!HtmlPath.empty()) {
    std::string Title =
        "DJXPerf: merge of " + std::to_string(Usable) + " journal(s)";
    if (!writeHtmlReport(P, Union, HtmlPath, optionsFromMeta(Meta),
                         Title)) {
      std::fprintf(stderr, "error: cannot write %s\n", HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "djxperf: wrote %s\n", HtmlPath.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Journal verbs run without a VM: dispatch before the flag loop.
  if (Argc >= 2 && std::strcmp(Argv[1], "recover") == 0)
    return runRecover(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "merge") == 0)
    return runMerge(Argc, Argv);

  DjxPerfConfig Agent;
  PerfEventKind Kind = PerfEventKind::L1Miss;
  uint64_t Period = 64;
  std::string Report = "object";
  std::string HtmlPath, ProfileDir, Target;
  bool RunOptimized = false;
  unsigned Top = 10;
  unsigned Jobs = std::max(1u, std::thread::hardware_concurrency());
  std::optional<NumaPolicy> PolicyOverride;
  std::optional<uint64_t> HeapBytesOverride;
  std::optional<uint64_t> StallTimeoutOverride;
  FaultPlan Faults;
  bool AnyFaultRate = false;
  std::optional<uint64_t> FaultSeed;
  TierConfig Tier;
  bool DumpTraces = false;
  bool StaticReport = false;
  std::string JournalPath;
  uint64_t MaxRounds = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NeedsValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--list") {
      for (const CliWorkload &W : catalog())
        std::printf("%-12s %s\n", W.Kind.c_str(), W.Name.c_str());
      return 0;
    }
    if (A == "--help" || A == "-h") {
      usage(Argv[0]);
      return 0;
    }
    if (A == "--optimized") {
      RunOptimized = true;
    } else if (A == "--event") {
      std::string V = NeedsValue("--event");
      auto K = parseEvent(V);
      if (!K) {
        std::fprintf(stderr, "error: unknown event '%s'\n", V.c_str());
        return 2;
      }
      Kind = *K;
    } else if (A == "--period") {
      Period = std::strtoull(NeedsValue("--period"), nullptr, 10);
      if (Period == 0) {
        std::fprintf(stderr, "error: period must be positive\n");
        return 2;
      }
    } else if (A == "--size-threshold") {
      Agent.MinObjectSize =
          std::strtoull(NeedsValue("--size-threshold"), nullptr, 10);
    } else if (A == "--no-gc-handling") {
      Agent.HandleGcMoves = Agent.HandleGcFrees = false;
    } else if (A == "--no-numa") {
      Agent.TrackNuma = false;
    } else if (A == "--report") {
      Report = NeedsValue("--report");
      if (Report != "object" && Report != "code" && Report != "both") {
        std::fprintf(stderr, "error: unknown report '%s'\n", Report.c_str());
        return 2;
      }
    } else if (A == "--top") {
      Top = static_cast<unsigned>(
          std::strtoul(NeedsValue("--top"), nullptr, 10));
      if (Top == 0) {
        std::fprintf(stderr, "error: --top must be positive\n");
        return 2;
      }
    } else if (A == "--jobs") {
      Jobs = static_cast<unsigned>(
          std::strtoul(NeedsValue("--jobs"), nullptr, 10));
      if (Jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be positive\n");
        return 2;
      }
    } else if (A == "--numa-policy") {
      std::string V = NeedsValue("--numa-policy");
      NumaPolicy P;
      if (!parseNumaPolicy(V, P)) {
        std::fprintf(stderr, "error: unknown NUMA policy '%s'\n", V.c_str());
        return 2;
      }
      PolicyOverride = P;
    } else if (A == "--tier") {
      std::string V = NeedsValue("--tier");
      ExecTier T;
      if (!parseExecTier(V, T)) {
        std::fprintf(stderr, "error: unknown tier '%s'\n", V.c_str());
        return 2;
      }
      Tier.Tier = T;
    } else if (A == "--hot-threshold") {
      Tier.HotThreshold = static_cast<uint32_t>(
          std::strtoul(NeedsValue("--hot-threshold"), nullptr, 10));
      if (Tier.HotThreshold == 0) {
        std::fprintf(stderr, "error: --hot-threshold must be positive\n");
        return 2;
      }
    } else if (A == "--max-trace-len") {
      Tier.MaxTraceLength = static_cast<uint32_t>(
          std::strtoul(NeedsValue("--max-trace-len"), nullptr, 10));
      if (Tier.MaxTraceLength == 0) {
        std::fprintf(stderr, "error: --max-trace-len must be positive\n");
        return 2;
      }
    } else if (A == "--dump-traces") {
      DumpTraces = true;
    } else if (A == "--no-analysis-fusion") {
      Tier.AnalysisFusion = false;
    } else if (A == "--static-report") {
      StaticReport = true;
    } else if (A == "--heap-bytes") {
      uint64_t V = std::strtoull(NeedsValue("--heap-bytes"), nullptr, 10);
      if (V == 0) {
        std::fprintf(stderr, "error: --heap-bytes must be positive\n");
        return 2;
      }
      HeapBytesOverride = V;
    } else if (A == "--stall-timeout-ms") {
      StallTimeoutOverride =
          std::strtoull(NeedsValue("--stall-timeout-ms"), nullptr, 10);
    } else if (A == "--fault-rate") {
      std::string V = NeedsValue("--fault-rate");
      if (!parseFaultRate(V, Faults)) {
        std::fprintf(stderr,
                     "error: bad --fault-rate '%s' (want alloc|ring|gc|"
                     "stall|journal-short|journal-error|journal-corrupt"
                     "=<p in [0,1]>)\n",
                     V.c_str());
        return 2;
      }
      AnyFaultRate = true;
    } else if (A == "--fault-seed") {
      FaultSeed = std::strtoull(NeedsValue("--fault-seed"), nullptr, 0);
    } else if (A == "--journal") {
      JournalPath = NeedsValue("--journal");
    } else if (A == "--max-rounds") {
      MaxRounds = std::strtoull(NeedsValue("--max-rounds"), nullptr, 10);
    } else if (A == "--html") {
      HtmlPath = NeedsValue("--html");
    } else if (A == "--write-profiles") {
      ProfileDir = NeedsValue("--write-profiles");
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", A.c_str());
      usage(Argv[0]);
      return 2;
    } else {
      Target = A;
    }
  }
  if (Target.empty()) {
    usage(Argv[0]);
    return 2;
  }

  const auto All = catalog();
  const CliWorkload *Chosen = nullptr;
  for (const CliWorkload &W : All)
    if (W.Name == Target)
      Chosen = &W;
  if (!Chosen) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (try --list)\n",
                 Target.c_str());
    return 2;
  }
  if (RunOptimized && !Chosen->Optimized) {
    std::fprintf(stderr, "error: '%s' has no optimized variant\n",
                 Target.c_str());
    return 2;
  }

  // Arm the fault injector before the VM exists so class loading and the
  // very first allocation are already candidate sites. The seed is always
  // printed so any observed failure can be replayed exactly.
  if (AnyFaultRate) {
    if (FaultSeed) {
      Faults.Seed = *FaultSeed;
    } else if (const char *Env = std::getenv("DJX_FAULT_SEED")) {
      Faults.Seed = std::strtoull(Env, nullptr, 0);
    } else {
      std::random_device Rd;
      Faults.Seed = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    }
    FaultInjector::install(Faults);
    std::fprintf(stderr,
                 "djxperf: DJX_FAULT_SEED=0x%llx (export to reproduce)\n",
                 (unsigned long long)Faults.Seed);
  }

  ParallelConfig Pc = Chosen->Parallel;
  VmConfig VmCfg = Chosen->Config;
  if (HeapBytesOverride) {
    if (Chosen->MultiThreaded) {
      Pc.HeapBytesPerThread = *HeapBytesOverride;
      VmCfg = Chosen->NumaRemote ? numaRemoteVmConfig(Pc)
                                 : parallelVmConfig(Pc);
    } else {
      VmCfg.HeapBytes = *HeapBytesOverride;
    }
  }
  if (StallTimeoutOverride)
    Pc.StallTimeoutMs = *StallTimeoutOverride;
  Pc.Tier = Tier;
  Pc.DumpTraces = DumpTraces;
  Agent.Tier = Tier;

  Agent.Events = {PerfEventAttr{Kind, Period, 64}};
  if (Chosen->MultiThreaded)
    Agent = parallelAgentConfig(Pc, Agent);

  // Open the journal before the VM exists so even a failure during
  // class loading leaves a well-formed (if empty) journal behind.
  std::unique_ptr<ProfileJournal> Journal;
  if (!JournalPath.empty()) {
    JournalMeta JMeta;
    JMeta.Workload = Chosen->Name;
    JMeta.Title = "DJXPerf: " + Chosen->Name;
    JMeta.EventKind = static_cast<unsigned>(Kind);
    JMeta.ReportMode = Report == "code" ? 1u : Report == "both" ? 2u : 0u;
    JMeta.TopGroups = Top;
    JMeta.ShowNuma = Agent.TrackNuma;
    std::string Err;
    Journal = ProfileJournal::open(JournalPath, JMeta, &Err);
    if (!Journal) {
      std::fprintf(stderr, "error: cannot open journal %s: %s\n",
                   JournalPath.c_str(), Err.c_str());
      return 1;
    }
  }

  // SIGINT/SIGTERM end the run at the next quiescent point (round
  // barrier for mt workloads, workload return otherwise), so the journal
  // is flushed and closed before exit 130. A second signal kills.
  std::signal(SIGINT, onTermSignal);
  std::signal(SIGTERM, onTermSignal);

  JavaVm Vm(VmCfg);
  DjxPerf Profiler(Vm, Agent);
  Profiler.start();
  // Any VM failure — genuine or injected — lands here as a typed VmError.
  // Salvage what the profiler has: stop cleanly, merge the per-thread
  // profiles collected before the failure, and emit a report explicitly
  // marked degraded, then exit with the kind's documented code.
  std::optional<VmError> Failure;
  std::vector<StaticSiteFacts> StaticSites;
  try {
    if (Chosen->MultiThreaded) {
      Pc.Jobs = Jobs;
      if (PolicyOverride)
        Pc.Policy = *PolicyOverride;
      // The static report needs instrumented bytecode to analyse: route
      // allocations through the ASM-style rewriting instead of VM events.
      if (StaticReport && !Chosen->NumaRemote)
        Pc.Instrumented = true;
      // Round barriers are the journal's epoch points: the barrier
      // thread runs alone, so snapshots are race-free, and the logical
      // round sequence is --jobs-invariant — so are the journal bytes.
      Pc.MaxRounds = MaxRounds;
      Pc.OnRoundEnd = [&](uint64_t Round) {
        if (Journal)
          Journal->flush(Profiler, Vm.methods(), Round);
        return GSignal != 0;
      };
      ParallelOutcome Out = Chosen->NumaRemote
                                ? runNumaRemoteWorkload(Vm, &Profiler, Pc)
                                : runParallelWorkload(Vm, &Profiler, Pc);
      StaticSites = std::move(Out.StaticSites);
      if (!Out.TraceDump.empty())
        std::fputs(Out.TraceDump.c_str(), stderr);
    } else {
      // Serial workloads have no executor rounds; GC finish is their
      // quiescent flush point (the epoch counter is the GC ordinal).
      if (Journal) {
        auto GcEpoch = std::make_shared<uint64_t>(0);
        Vm.jvmti().onGcFinish([&Journal, &Profiler, &Vm,
                               GcEpoch](const GcStats &) {
          Journal->flush(Profiler, Vm.methods(), ++*GcEpoch);
        });
      }
      (RunOptimized ? Chosen->Optimized : Chosen->Baseline)(Vm);
    }
  } catch (VmError &E) {
    Failure = std::move(E);
  }
  if (GSignal != 0 && !Failure)
    Failure = VmError(VmErrorKind::Interrupted,
                      std::string("caught ") +
                          (GSignal == SIGTERM ? "SIGTERM" : "SIGINT") +
                          ", ended run at a quiescent point");
  Profiler.stop();

  // Close the journal after stop() so the ring drains land in the final
  // epoch; a failed run's Close carries the same accounting the banner
  // below prints, which is what lets `recover` reproduce it exactly.
  if (Journal) {
    if (Failure)
      Journal->closeFailed(Profiler, Vm.methods(), *Failure,
                           Profiler.samplesHandled(),
                           Profiler.samplesDropped());
    else
      Journal->closeClean(Profiler, Vm.methods());
    if (Journal->active())
      std::fprintf(stderr,
                   "djxperf: journal %s: %llu epoch(s), %llu segment(s), "
                   "%llu bytes\n",
                   Journal->path().c_str(),
                   (unsigned long long)Journal->epochsCommitted(),
                   (unsigned long long)Journal->segmentsWritten(),
                   (unsigned long long)Journal->bytesWritten());
  }

  std::fprintf(stderr,
               "djxperf: %llu cycles, %llu allocation callbacks, %llu"
               " tracked, %llu samples, %zu KiB profiler state\n",
               (unsigned long long)Vm.totalCycles(),
               (unsigned long long)Profiler.allocationCallbacks(),
               (unsigned long long)Profiler.allocationsTracked(),
               (unsigned long long)Profiler.samplesHandled(),
               Profiler.memoryFootprint() / 1024);
  if (Profiler.samplesDropped() > 0)
    std::fprintf(stderr,
                 "djxperf: %llu samples dropped, %llu forced ring drains\n",
                 (unsigned long long)Profiler.samplesDropped(),
                 (unsigned long long)Profiler.ringOverflowDrains());

  MergedProfile P = Profiler.analyze();
  if (Failure)
    std::fputs(renderDegradedBanner(*Failure, Profiler.samplesHandled(),
                                    Profiler.samplesDropped())
                   .c_str(),
               stdout);
  ReportOptions Opts;
  Opts.SortKind = Kind;
  Opts.TopGroups = Top;
  Opts.ShowNuma = Agent.TrackNuma;
  if (Report == "object" || Report == "both")
    std::fputs(renderObjectCentric(P, Vm.methods(), Opts).c_str(), stdout);
  if (Report == "code" || Report == "both")
    std::fputs(renderCodeCentric(P, Vm.methods(), Opts).c_str(), stdout);
  if (StaticReport)
    std::fputs(
        renderStaticReport(StaticSites, P, Vm.methods(), Kind).c_str(),
        stdout);
  if (!HtmlPath.empty()) {
    if (!writeHtmlReport(P, Vm.methods(), HtmlPath, Opts,
                         "DJXPerf: " + Chosen->Name)) {
      std::fprintf(stderr, "error: cannot write %s\n", HtmlPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "djxperf: wrote %s\n", HtmlPath.c_str());
  }
  if (!ProfileDir.empty()) {
    unsigned N = Profiler.writeProfiles(ProfileDir);
    std::fprintf(stderr, "djxperf: wrote %u profile file(s) to %s\n", N,
                 ProfileDir.c_str());
  }
  if (Failure) {
    std::fprintf(stderr, "djxperf: FAILED: %s\n",
                 Failure->describe().c_str());
    return vmErrorExitCode(Failure->Kind);
  }
  return 0;
}
