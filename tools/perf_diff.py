#!/usr/bin/env python3
"""Record-only perf-trajectory diff for BENCH_*.json artifacts.

Usage: perf_diff.py PREVIOUS.json CURRENT.json

Compares every numeric "per_sec" leaf shared by the two files and prints a
markdown table of the ratios (current / previous), suitable for
$GITHUB_STEP_SUMMARY. Exits 0 always: CI machines are far too noisy to
gate on a wall-clock threshold — this is an annotation, not a check.
"""

import json
import sys


def leaves(node, prefix=""):
    """Yields (dotted-path, value) for every numeric per_sec-ish leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and (
                key.endswith("per_sec") or key.startswith("per_sec")
            ):
                yield path, float(value)
            else:
                yield from leaves(value, path)


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} PREVIOUS.json CURRENT.json",
              file=sys.stderr)
        return 0
    try:
        with open(sys.argv[1]) as f:
            prev = dict(leaves(json.load(f)))
        with open(sys.argv[2]) as f:
            cur = dict(leaves(json.load(f)))
    except (OSError, ValueError) as err:
        print(f"perf_diff: skipping ({err})", file=sys.stderr)
        return 0

    shared = sorted(
        path for path in set(prev) & set(cur)
        # Ratios and frozen baselines aren't throughputs; skip them.
        if not path.startswith(("speedup", "baseline"))
    )
    if not shared:
        print("perf_diff: no shared per_sec metrics", file=sys.stderr)
        return 0

    print("### Perf trajectory (record-only, noisy CI hardware)")
    print()
    print("| metric | previous | current | ratio |")
    print("|---|---:|---:|---:|")
    for path in shared:
        p, c = prev[path], cur[path]
        ratio = c / p if p else float("nan")
        print(f"| `{path}` | {p:,.0f} | {c:,.0f} | x{ratio:.2f} |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
