#!/usr/bin/env python3
"""Perf-trajectory diff and regression gate for BENCH_*.json artifacts.

Usage:
  perf_diff.py PREVIOUS.json CURRENT.json
  perf_diff.py --gate GATES.json PREVIOUS.json CURRENT.json

Both modes compare every numeric "per_sec" leaf shared by the two files
and print a markdown table of the ratios (current / previous), suitable
for $GITHUB_STEP_SUMMARY.

Without --gate the script is a pure annotation and always exits 0.

With --gate it enforces per-metric tolerance bands from GATES.json (see
bench/perf_gates.json):

  {
    "default_tolerance_pct": 40,
    "metrics":  { "<fnmatch pattern>": { "tolerance_pct": 50 }, ... },
    "required": [ "<fnmatch pattern>", ... ]
  }

A metric regresses when current < previous * (1 - tolerance/100); the
first "metrics" pattern matching the dotted path supplies the band, else
default_tolerance_pct. A metric present in PREVIOUS that matches a
"required" pattern must still exist in CURRENT (a vanished metric is a
silent way to dodge its band). Improvements and brand-new metrics never
fail.

Exit codes:
  0  pass (including the bootstrap case: PREVIOUS missing or unreadable)
  1  gate breach: at least one regression or vanished required metric
  2  usage/config error: bad arguments, malformed GATES.json, or a
     malformed/unreadable CURRENT.json while gating
"""

import fnmatch
import json
import sys


def leaves(node, prefix=""):
    """Yields (dotted-path, value) for every numeric per_sec-ish leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and (
                key.endswith("per_sec") or key.startswith("per_sec")
            ):
                yield path, float(value)
            else:
                yield from leaves(value, path)


def load_metrics(path):
    """Returns {dotted-path: value} for a bench JSON file; raises on error."""
    with open(path) as f:
        return {
            p: v for p, v in leaves(json.load(f))
            # Ratios and frozen baselines aren't throughputs; skip them.
            if not p.startswith(("speedup", "baseline"))
        }


def load_gates(path):
    """Parses and validates a gates config; raises ValueError when bad."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError("gates config must be a JSON object")
    gates = {
        "default_tolerance_pct": doc.get("default_tolerance_pct", 40.0),
        "metrics": doc.get("metrics", {}),
        "required": doc.get("required", []),
    }
    if not isinstance(gates["default_tolerance_pct"], (int, float)):
        raise ValueError("default_tolerance_pct must be a number")
    if not isinstance(gates["metrics"], dict):
        raise ValueError('"metrics" must be an object of pattern -> band')
    for pattern, band in gates["metrics"].items():
        if not isinstance(band, dict) or not isinstance(
            band.get("tolerance_pct"), (int, float)
        ):
            raise ValueError(
                f'metric band "{pattern}" needs a numeric tolerance_pct'
            )
    if not isinstance(gates["required"], list):
        raise ValueError('"required" must be a list of patterns')
    return gates


def tolerance_for(path, gates):
    """The tolerance band (pct) for a metric: first matching pattern wins."""
    for pattern in sorted(gates["metrics"]):
        if fnmatch.fnmatch(path, pattern):
            return float(gates["metrics"][pattern]["tolerance_pct"])
    return float(gates["default_tolerance_pct"])


def evaluate_gate(prev, cur, gates):
    """Applies the bands. Returns (failures, rows).

    failures: list of human-readable breach descriptions (empty = pass).
    rows: (path, prev, cur, ratio, tolerance_pct, ok) per shared metric,
    for the annotation table.
    """
    failures = []
    rows = []
    for path in sorted(set(prev) & set(cur)):
        p, c = prev[path], cur[path]
        tol = tolerance_for(path, gates)
        floor = p * (1.0 - tol / 100.0)
        ok = c >= floor or p <= 0
        ratio = c / p if p else float("nan")
        rows.append((path, p, c, ratio, tol, ok))
        if not ok:
            failures.append(
                f"{path}: {c:,.0f}/s is below the band "
                f"({p:,.0f}/s previous, -{tol:.0f}% tolerance "
                f"=> floor {floor:,.0f}/s)"
            )
    for path in sorted(set(prev) - set(cur)):
        if any(fnmatch.fnmatch(path, r) for r in gates["required"]):
            failures.append(
                f"{path}: present in previous run but missing from the "
                f"current one (required metrics may not vanish)"
            )
    return failures, rows


def print_table(rows, gated):
    title = "Perf gate" if gated else "Perf trajectory (record-only)"
    print(f"### {title}")
    print()
    if gated:
        print("| metric | previous | current | ratio | band | ok |")
        print("|---|---:|---:|---:|---:|:--|")
        for path, p, c, ratio, tol, ok in rows:
            mark = "yes" if ok else "**FAIL**"
            print(
                f"| `{path}` | {p:,.0f} | {c:,.0f} | x{ratio:.2f} "
                f"| -{tol:.0f}% | {mark} |"
            )
    else:
        print("| metric | previous | current | ratio |")
        print("|---|---:|---:|---:|")
        for path, p, c, ratio, _tol, _ok in rows:
            print(f"| `{path}` | {p:,.0f} | {c:,.0f} | x{ratio:.2f} |")


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    gates_path = None
    if argv and argv[0] == "--gate":
        if len(argv) < 2:
            print("perf_diff: --gate needs a config path", file=sys.stderr)
            return 2
        gates_path = argv[1]
        argv = argv[2:]
    if len(argv) != 2:
        print(
            f"usage: perf_diff.py [--gate GATES.json] PREVIOUS.json "
            f"CURRENT.json",
            file=sys.stderr,
        )
        return 2 if gates_path else 0

    gates = None
    if gates_path:
        try:
            gates = load_gates(gates_path)
        except (OSError, ValueError) as err:
            print(f"perf_diff: bad gates config: {err}", file=sys.stderr)
            return 2

    # A missing or unreadable PREVIOUS is the bootstrap case (first run on
    # a branch, expired artifact): nothing to compare against, pass.
    try:
        prev = load_metrics(argv[0])
    except (OSError, ValueError) as err:
        print(f"perf_diff: no previous run to compare against ({err}); "
              f"passing", file=sys.stderr)
        return 0

    try:
        cur = load_metrics(argv[1])
    except (OSError, ValueError) as err:
        print(f"perf_diff: cannot read current results ({err})",
              file=sys.stderr)
        # When gating, an unreadable current file must not pass silently.
        return 2 if gates else 0

    if gates is None:
        shared = sorted(set(prev) & set(cur))
        rows = [
            (p, prev[p], cur[p],
             cur[p] / prev[p] if prev[p] else float("nan"), 0.0, True)
            for p in shared
        ]
        if not rows:
            print("perf_diff: no shared per_sec metrics", file=sys.stderr)
            return 0
        print_table(rows, gated=False)
        return 0

    failures, rows = evaluate_gate(prev, cur, gates)
    if rows or failures:
        print_table(rows, gated=True)
    else:
        print("perf_diff: no shared per_sec metrics", file=sys.stderr)
    for failure in failures:
        print(f"perf_diff: GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
