#!/usr/bin/env python3
"""Unit tests for tools/perf_diff.py (run by ctest as `perf_diff_test`).

Uses the stdlib unittest runner — the container has no pytest — and
imports perf_diff as a module, exercising both the pure band math
(evaluate_gate) and the CLI entry point's exit-code contract against
temp-file fixtures.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import perf_diff  # noqa: E402


def gates(default=50.0, metrics=None, required=None):
    return {
        "default_tolerance_pct": default,
        "metrics": metrics or {},
        "required": required or [],
    }


class LeafExtractionTest(unittest.TestCase):
    def test_nested_per_sec_leaves_get_dotted_paths(self):
        doc = {
            "steps_per_sec": {"jobs1": {"per_sec": 100, "steps": 5}},
            "interp_steps_per_sec": {"per_sec": 7.0},
            "seconds": 1.25,
        }
        self.assertEqual(
            dict(perf_diff.leaves(doc)),
            {
                "steps_per_sec.jobs1.per_sec": 100.0,
                "interp_steps_per_sec.per_sec": 7.0,
            },
        )

    def test_speedup_and_baseline_paths_are_skipped(self):
        doc = {
            "speedup": {"per_sec": 3.0},
            "baseline_frozen": {"per_sec": 9.0},
            "real": {"per_sec": 4.0},
        }
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            self.assertEqual(perf_diff.load_metrics(path),
                             {"real.per_sec": 4.0})
        finally:
            os.unlink(path)


class BandMathTest(unittest.TestCase):
    def test_within_band_passes(self):
        prev = {"m.per_sec": 100.0}
        cur = {"m.per_sec": 60.0}  # -40% against a 50% band.
        failures, rows = perf_diff.evaluate_gate(prev, cur, gates(50.0))
        self.assertEqual(failures, [])
        self.assertTrue(rows[0][5])

    def test_below_band_fails(self):
        prev = {"m.per_sec": 100.0}
        cur = {"m.per_sec": 49.0}  # Below the 50% floor.
        failures, rows = perf_diff.evaluate_gate(prev, cur, gates(50.0))
        self.assertEqual(len(failures), 1)
        self.assertIn("m.per_sec", failures[0])
        self.assertFalse(rows[0][5])

    def test_exact_floor_passes(self):
        failures, _ = perf_diff.evaluate_gate(
            {"m.per_sec": 100.0}, {"m.per_sec": 50.0}, gates(50.0))
        self.assertEqual(failures, [])

    def test_improvement_never_fails(self):
        failures, _ = perf_diff.evaluate_gate(
            {"m.per_sec": 100.0}, {"m.per_sec": 1000.0}, gates(1.0))
        self.assertEqual(failures, [])

    def test_per_metric_pattern_overrides_default(self):
        g = gates(90.0, metrics={"hot.*": {"tolerance_pct": 10}})
        failures, _ = perf_diff.evaluate_gate(
            {"hot.per_sec": 100.0, "cold.per_sec": 100.0},
            {"hot.per_sec": 85.0, "cold.per_sec": 85.0},
            g,
        )
        # Only the tight hot.* band trips; cold rides the loose default.
        self.assertEqual(len(failures), 1)
        self.assertIn("hot.per_sec", failures[0])

    def test_zero_previous_is_not_a_division_trap(self):
        failures, rows = perf_diff.evaluate_gate(
            {"m.per_sec": 0.0}, {"m.per_sec": 0.0}, gates(50.0))
        self.assertEqual(failures, [])
        self.assertTrue(rows[0][5])

    def test_required_metric_vanishing_fails(self):
        g = gates(50.0, required=["steps_per_sec.*"])
        failures, _ = perf_diff.evaluate_gate(
            {"steps_per_sec.jobs1.per_sec": 100.0}, {}, g)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing", failures[0])

    def test_unrequired_metric_vanishing_passes(self):
        failures, _ = perf_diff.evaluate_gate(
            {"optional.per_sec": 100.0}, {}, gates(50.0))
        self.assertEqual(failures, [])

    def test_new_metric_in_current_is_ignored(self):
        failures, rows = perf_diff.evaluate_gate(
            {}, {"brand_new.per_sec": 5.0}, gates(50.0))
        self.assertEqual(failures, [])
        self.assertEqual(rows, [])


class GatesConfigTest(unittest.TestCase):
    def load(self, doc):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
            path = f.name
        try:
            return perf_diff.load_gates(path)
        finally:
            os.unlink(path)

    def test_repo_gates_config_is_valid(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        g = perf_diff.load_gates(os.path.join(root, "bench",
                                              "perf_gates.json"))
        self.assertGreater(g["default_tolerance_pct"], 0)
        self.assertTrue(g["required"])

    def test_malformed_json_raises(self):
        with self.assertRaises(ValueError):
            self.load("{not json")

    def test_band_without_tolerance_raises(self):
        with self.assertRaises(ValueError):
            self.load({"metrics": {"m.*": {}}})

    def test_non_object_config_raises(self):
        with self.assertRaises(ValueError):
            self.load([1, 2, 3])


class CliExitCodeTest(unittest.TestCase):
    """main()'s contract, driven through temp files like CI drives it."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = perf_diff.main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_record_mode_always_exits_zero(self):
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", {"m": {"per_sec": 1}})
        code, out, _ = self.run_main([prev, cur])
        self.assertEqual(code, 0)
        self.assertIn("x0.01", out)

    def test_gate_mode_fails_on_regression(self):
        g = self.write("gates.json", gates(50.0))
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", {"m": {"per_sec": 10}})
        code, out, err = self.run_main(["--gate", g, prev, cur])
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL", err)
        self.assertIn("**FAIL**", out)

    def test_gate_mode_passes_within_band(self):
        g = self.write("gates.json", gates(50.0))
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", {"m": {"per_sec": 95}})
        code, _, _ = self.run_main(["--gate", g, prev, cur])
        self.assertEqual(code, 0)

    def test_missing_previous_bootstraps_to_pass(self):
        g = self.write("gates.json", gates(50.0))
        cur = self.write("cur.json", {"m": {"per_sec": 100}})
        code, _, err = self.run_main(
            ["--gate", g, os.path.join(self.dir.name, "nope.json"), cur])
        self.assertEqual(code, 0)
        self.assertIn("no previous run", err)

    def test_malformed_current_fails_config_error_when_gating(self):
        g = self.write("gates.json", gates(50.0))
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", "{broken")
        code, _, _ = self.run_main(["--gate", g, prev, cur])
        self.assertEqual(code, 2)

    def test_malformed_current_passes_in_record_mode(self):
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", "{broken")
        code, _, _ = self.run_main([prev, cur])
        self.assertEqual(code, 0)

    def test_malformed_gates_config_is_config_error(self):
        g = self.write("gates.json", "{broken")
        prev = self.write("prev.json", {"m": {"per_sec": 100}})
        cur = self.write("cur.json", {"m": {"per_sec": 100}})
        code, _, _ = self.run_main(["--gate", g, prev, cur])
        self.assertEqual(code, 2)

    def test_usage_error_while_gating(self):
        code, _, _ = self.run_main(["--gate"])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
